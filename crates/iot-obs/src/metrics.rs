//! Deterministic fixed-bucket histogram.
//!
//! Buckets are powers of two fixed at compile time, so the histogram of
//! a value stream is a pure function of the multiset of values: merging
//! two histograms is elementwise addition, which is associative and
//! commutative — the property the shard-merge determinism tests rely on.

use iot_core::json::{Json, ToJson};

/// Histogram over `u64` samples with power-of-two buckets.
///
/// Bucket 0 counts exact zeros; bucket `i` (1 ≤ i ≤ 32) counts values in
/// `[2^(i-1), 2^i)`; the last bucket counts everything ≥ 2^32.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; Self::NUM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; Self::NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Bucket count: zero + 32 power-of-two bands + overflow.
    pub const NUM_BUCKETS: usize = 34;

    fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (64 - v.leading_zeros() as usize).min(Self::NUM_BUCKETS - 1)
        }
    }

    /// Inclusive upper bound of bucket `i` (`u64::MAX` for the overflow
    /// bucket).
    pub fn bucket_upper_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= Self::NUM_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self` (elementwise bucket addition).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Per-bucket sample counts, indexed like
    /// [`bucket_upper_bound`](Histogram::bucket_upper_bound) — exposed
    /// so exporters can render exactly the bounds the quantile queries
    /// use.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank q-th quantile (0–1), resolved to the inclusive upper
    /// bound of the bucket holding that rank. `None` when empty.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(Self::bucket_upper_bound(i).min(self.max));
            }
        }
        Some(self.max)
    }
}

impl ToJson for Histogram {
    /// Compact, deterministic form: summary stats plus only the
    /// non-empty buckets as `[inclusive_upper_bound, count]` pairs.
    fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.set("count", self.count.to_json());
        j.set("sum", self.sum.to_json());
        j.set("min", self.min().to_json());
        j.set("max", self.max().to_json());
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                Json::Arr(vec![Self::bucket_upper_bound(i).to_json(), n.to_json()])
            })
            .collect();
        j.set("buckets", Json::Arr(buckets));
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), Histogram::NUM_BUCKETS - 1);
        assert_eq!(Histogram::bucket_upper_bound(0), 0);
        assert_eq!(Histogram::bucket_upper_bound(1), 1);
        assert_eq!(Histogram::bucket_upper_bound(2), 3);
        assert_eq!(
            Histogram::bucket_upper_bound(Histogram::NUM_BUCKETS - 1),
            u64::MAX
        );
    }

    #[test]
    fn merge_matches_serial_observation() {
        let values = [0u64, 1, 5, 17, 1000, 1 << 40, 3, 3, 64];
        let mut serial = Histogram::default();
        for &v in &values {
            serial.observe(v);
        }
        let (left, right) = values.split_at(4);
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for &v in left {
            a.observe(v);
        }
        for &v in right {
            b.observe(v);
        }
        let mut merged_ab = a.clone();
        merged_ab.merge(&b);
        let mut merged_ba = b.clone();
        merged_ba.merge(&a);
        assert_eq!(merged_ab, serial);
        assert_eq!(merged_ba, serial, "merge must be commutative");
        assert_eq!(serial.count(), values.len() as u64);
        assert_eq!(serial.min(), Some(0));
        assert_eq!(serial.max(), Some(1 << 40));
    }

    #[test]
    fn quantiles_land_in_the_right_band() {
        let mut h = Histogram::default();
        for v in 1..=100u64 {
            h.observe(v);
        }
        // Median of 1..=100 is ~50 → bucket [32, 64) → upper bound 63.
        assert_eq!(h.quantile_upper_bound(0.5), Some(63));
        assert_eq!(h.quantile_upper_bound(1.0), Some(100));
        assert_eq!(Histogram::default().quantile_upper_bound(0.5), None);
    }

    #[test]
    fn json_is_compact_and_stable() {
        let mut h = Histogram::default();
        h.observe(0);
        h.observe(5);
        let s = h.to_json().dump();
        assert_eq!(
            s,
            r#"{"count":2,"sum":5,"min":0,"max":5,"buckets":[[0,1],[7,1]]}"#
        );
    }
}
