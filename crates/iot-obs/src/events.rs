//! Event-level flight recorder.
//!
//! Where [`Registry`](crate::Registry) keeps *aggregates* (a span path's
//! total wall-clock, a counter's sum), the flight recorder keeps the
//! *sequence*: every span begin/end, counter delta, and mark, timestamped
//! and ordered, in a fixed-capacity shard-local ring buffer. When the
//! ring fills it overwrites its oldest entries — flight-recorder
//! semantics: the most recent window of activity survives, and the
//! number of overwritten events is reported so truncation is never
//! silent.
//!
//! ## Allocation discipline
//!
//! The buffer is reserved once at setup ([`EventRing::with_capacity`]);
//! events are plain `Copy` structs, so the record path performs no
//! allocation. Labels are interned into a small per-ring table on first
//! use — after the first occurrence of a label the hot path only does a
//! short pointer-compare scan, exactly like the span arena.
//!
//! ## Streams and determinism
//!
//! Wall-clock timestamps and worker ids are intrinsically run-dependent,
//! so the merged timeline carries a second, *logical* coordinate system:
//! a **stream** is a deterministic 64-bit key for the unit of work being
//! processed (the pipeline uses a digest of the experiment identity
//! tuple `(device, site, vpn, label, rep)`), and every event records the
//! sequence number within its stream. Sorting stream-tagged events by
//! `(stream, stream_seq, label, kind, delta)` yields an order that is a
//! pure function of the corpus — byte-identical across 1, 2, or 8
//! workers — which is what [`Timeline::deterministic_events`] exposes
//! and `crate::export` renders. Events recorded outside any stream
//! (driver-level spans like `campaign_new`, per-worker `shard` regions)
//! carry stream 0 and appear only in the wall-clock timeline.

use std::time::Instant;

/// Default ring capacity (events) when `IOT_OBS_EVENTS` is unset.
/// Budgeted so a quick-scale campaign records without wrapping:
/// ~2.5k experiments × ~17 events each ≈ 43k events.
pub const DEFAULT_EVENT_CAPACITY: usize = 1 << 17;

/// What one event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// A span opened (label = span path).
    SpanBegin,
    /// A span closed.
    SpanEnd,
    /// A counter was incremented by `delta`.
    Counter,
    /// An instantaneous point of interest (e.g. `quarantine`).
    Mark,
}

impl EventKind {
    /// Short stable name used by exporters.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::SpanBegin => "B",
            EventKind::SpanEnd => "E",
            EventKind::Counter => "C",
            EventKind::Mark => "M",
        }
    }
}

/// One recorded event. `Copy`, so ring writes never allocate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the process-wide recorder epoch.
    pub ts_ns: u64,
    /// Per-worker monotonic sequence number (tie-break for equal
    /// timestamps within one worker).
    pub seq: u64,
    /// Deterministic stream key; 0 when recorded outside any stream.
    pub stream: u64,
    /// Sequence number within the stream (resets at stream begin).
    pub stream_seq: u32,
    /// Worker track (0 = driver, 1.. = shard workers).
    pub worker: u32,
    /// Index into the ring's label table.
    pub label: u32,
    /// Event kind.
    pub kind: EventKind,
    /// Counter delta (0 for spans and marks).
    pub delta: u64,
}

/// The process-wide epoch all rings stamp against, so timestamps from
/// different workers are comparable.
fn epoch() -> Instant {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Converts an already-read `Instant` to a recorder timestamp — lets
/// callers that just read the clock for their own timing (span guards)
/// stamp events without a second clock read.
pub(crate) fn ts_ns_at(at: Instant) -> u64 {
    u64::try_from(at.saturating_duration_since(epoch()).as_nanos()).unwrap_or(u64::MAX)
}

/// Fixed-capacity shard-local event buffer.
#[derive(Debug)]
pub struct EventRing {
    labels: Vec<String>,
    buf: Vec<Event>,
    /// Write cursor once the buffer is full (oldest entry).
    head: usize,
    capacity: usize,
    overwritten: u64,
    seq: u64,
    stream: u64,
    stream_seq: u32,
    worker: u32,
}

impl EventRing {
    /// Creates a ring holding at most `capacity` events. The buffer is
    /// reserved up front; recording never allocates event storage.
    pub fn with_capacity(capacity: usize) -> Self {
        EventRing {
            labels: Vec::new(),
            buf: Vec::with_capacity(capacity),
            head: 0,
            capacity,
            overwritten: 0,
            seq: 0,
            stream: 0,
            stream_seq: 0,
            worker: 0,
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events overwritten after the ring filled.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Number of currently retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Sets the worker track stamped on subsequent events.
    pub fn set_worker(&mut self, worker: u32) {
        self.worker = worker;
    }

    /// Enters a stream: subsequent events carry `stream` and a sequence
    /// number counted from zero.
    pub fn begin_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.stream_seq = 0;
    }

    /// Leaves the current stream; subsequent events are driver-scoped.
    pub fn end_stream(&mut self) {
        self.stream = 0;
        self.stream_seq = 0;
    }

    /// Interns `label`, returning its index. Linear scan: the label set
    /// is small (one entry per distinct span path / counter name).
    fn intern(&mut self, label: &str) -> u32 {
        if let Some(i) = self.labels.iter().position(|l| l == label) {
            return i as u32;
        }
        self.labels.push(label.to_string());
        (self.labels.len() - 1) as u32
    }

    /// Records one event stamped with the current clock. Overwrites the
    /// oldest entry when full.
    pub fn record(&mut self, kind: EventKind, label: &str, delta: u64) {
        self.record_at(
            u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX),
            kind,
            label,
            delta,
        );
    }

    /// Records one event with a caller-supplied timestamp (from
    /// [`ts_ns_at`]) — the span hot path reads the clock exactly once
    /// per boundary and shares the reading between its aggregate timer
    /// and the flight recorder.
    pub(crate) fn record_at(&mut self, ts_ns: u64, kind: EventKind, label: &str, delta: u64) {
        if self.capacity == 0 {
            return;
        }
        let label = self.intern(label);
        let ev = Event {
            ts_ns,
            seq: self.seq,
            stream: self.stream,
            stream_seq: self.stream_seq,
            worker: self.worker,
            label,
            kind,
            delta,
        };
        self.seq += 1;
        if self.stream != 0 {
            self.stream_seq += 1;
        }
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.overwritten += 1;
        }
    }

    /// Drains the ring in record order into `(labels, events)`, oldest
    /// surviving event first.
    pub fn into_parts(self) -> (Vec<String>, Vec<Event>, u64) {
        let EventRing {
            labels,
            buf,
            head,
            overwritten,
            ..
        } = self;
        let mut events = Vec::with_capacity(buf.len());
        events.extend_from_slice(&buf[head..]);
        events.extend_from_slice(&buf[..head]);
        (labels, events, overwritten)
    }

    /// Copies the retained events in record order (for snapshots that
    /// must not consume the ring).
    pub fn parts(&self) -> (Vec<String>, Vec<Event>, u64) {
        let mut events = Vec::with_capacity(self.buf.len());
        events.extend_from_slice(&self.buf[self.head..]);
        events.extend_from_slice(&self.buf[..self.head]);
        (self.labels.clone(), events, self.overwritten)
    }
}

/// A merged, label-resolved view over one or more rings: the global
/// timeline the exporters consume.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    /// Shared label table; events index into it.
    pub labels: Vec<String>,
    /// Events sorted by `(ts_ns, worker, seq)`.
    pub events: Vec<Event>,
    /// Total events lost to ring overwrites across all merged rings.
    pub overwritten: u64,
}

impl Timeline {
    /// Builds a timeline from raw parts, remapping nothing (the caller
    /// guarantees `events` index into `labels`), then sorts into global
    /// wall-clock order.
    pub fn new(labels: Vec<String>, mut events: Vec<Event>, overwritten: u64) -> Self {
        events.sort_by_key(|e| (e.ts_ns, e.worker, e.seq));
        Timeline {
            labels,
            events,
            overwritten,
        }
    }

    /// The label of an event.
    pub fn label(&self, ev: &Event) -> &str {
        &self.labels[ev.label as usize]
    }

    /// The deterministic subset: stream-tagged events, ordered by the
    /// logical key `(stream, stream_seq, label, kind, delta)` — a pure
    /// function of the corpus, independent of worker count, scheduling,
    /// and wall clocks.
    pub fn deterministic_events(&self) -> Vec<&Event> {
        let mut evs: Vec<&Event> = self.events.iter().filter(|e| e.stream != 0).collect();
        evs.sort_by(|a, b| {
            (a.stream, a.stream_seq, self.label(a), a.kind, a.delta).cmp(&(
                b.stream,
                b.stream_seq,
                self.label(b),
                b.kind,
                b.delta,
            ))
        });
        evs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(ring: EventRing) -> Vec<(String, EventKind, u64)> {
        let (labels, events, _) = ring.into_parts();
        events
            .iter()
            .map(|e| (labels[e.label as usize].clone(), e.kind, e.delta))
            .collect()
    }

    #[test]
    fn records_in_order_without_allocating_per_event() {
        let mut r = EventRing::with_capacity(8);
        r.record(EventKind::SpanBegin, "a", 0);
        r.record(EventKind::Counter, "c", 5);
        r.record(EventKind::SpanEnd, "a", 0);
        assert_eq!(r.len(), 3);
        assert_eq!(r.overwritten(), 0);
        let evs = drain(r);
        assert_eq!(
            evs,
            vec![
                ("a".into(), EventKind::SpanBegin, 0),
                ("c".into(), EventKind::Counter, 5),
                ("a".into(), EventKind::SpanEnd, 0),
            ]
        );
    }

    #[test]
    fn full_ring_overwrites_oldest_and_counts_losses() {
        let mut r = EventRing::with_capacity(4);
        for i in 0..10u64 {
            r.record(EventKind::Counter, "n", i);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.overwritten(), 6);
        let evs = drain(r);
        let deltas: Vec<u64> = evs.iter().map(|(_, _, d)| *d).collect();
        assert_eq!(deltas, vec![6, 7, 8, 9], "most recent window survives");
    }

    #[test]
    fn zero_capacity_ring_is_inert() {
        let mut r = EventRing::with_capacity(0);
        r.record(EventKind::Mark, "x", 0);
        assert!(r.is_empty());
        assert_eq!(r.overwritten(), 0);
    }

    #[test]
    fn stream_sequence_resets_per_stream() {
        let mut r = EventRing::with_capacity(16);
        r.begin_stream(42);
        r.record(EventKind::SpanBegin, "work", 0);
        r.record(EventKind::SpanEnd, "work", 0);
        r.end_stream();
        r.record(EventKind::Mark, "driver", 0);
        r.begin_stream(43);
        r.record(EventKind::SpanBegin, "work", 0);
        r.end_stream();
        let (_, events, _) = r.into_parts();
        assert_eq!(events[0].stream, 42);
        assert_eq!(events[0].stream_seq, 0);
        assert_eq!(events[1].stream_seq, 1);
        assert_eq!(events[2].stream, 0, "driver-scoped event");
        assert_eq!(events[3].stream, 43);
        assert_eq!(events[3].stream_seq, 0);
    }

    #[test]
    fn timeline_sorts_by_wall_clock_then_worker_then_seq() {
        let mk = |ts, worker, seq| Event {
            ts_ns: ts,
            seq,
            stream: 0,
            stream_seq: 0,
            worker,
            label: 0,
            kind: EventKind::Mark,
            delta: 0,
        };
        let t = Timeline::new(
            vec!["x".into()],
            vec![mk(5, 2, 0), mk(5, 1, 1), mk(1, 3, 0), mk(5, 1, 0)],
            0,
        );
        let order: Vec<(u64, u32, u64)> =
            t.events.iter().map(|e| (e.ts_ns, e.worker, e.seq)).collect();
        assert_eq!(order, vec![(1, 3, 0), (5, 1, 0), (5, 1, 1), (5, 2, 0)]);
    }

    #[test]
    fn deterministic_subset_is_input_order_independent() {
        let build = |shuffle: bool| {
            let mut r = EventRing::with_capacity(32);
            let streams: &[u64] = if shuffle { &[9, 7, 8] } else { &[7, 8, 9] };
            for &s in streams {
                r.begin_stream(s);
                r.record(EventKind::SpanBegin, "ingest", 0);
                r.record(EventKind::Counter, "packets", s * 10);
                r.record(EventKind::SpanEnd, "ingest", 0);
                r.end_stream();
            }
            let (labels, events, over) = r.into_parts();
            let t = Timeline::new(labels, events, over);
            t.deterministic_events()
                .iter()
                .map(|e| (e.stream, e.stream_seq, t.label(e).to_string(), e.kind, e.delta))
                .collect::<Vec<_>>()
        };
        assert_eq!(build(false), build(true));
    }
}
