//! The shard-local metric registry.
//!
//! A [`Registry`] is owned by exactly one worker (it is deliberately not
//! `Sync`): recording never takes a lock, mirroring how each pipeline
//! worker owns a private `PipelineShard`. When the shards fold, the
//! registries [`merge`](Registry::merge); counter, histogram, and span
//! merges are associative and commutative, so the merged registry is
//! independent of worker count and fold order. Gauges merge by maximum
//! (they record high-water marks / topology facts, not sums).
//!
//! Span paths are interned into a slot arena on first use: opening a
//! span peeks the stack, resolves `(parent, label)` to a slot with a
//! short linear scan, and closing records into `stats[slot]` — after the
//! first occurrence of a path, the hot path allocates nothing and never
//! compares full path strings. This keeps per-experiment instrumentation
//! overhead in the low microseconds (gated <5% end to end by
//! `obs_check`).

use crate::metrics::Histogram;
use crate::span::SpanStats;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    /// Interned span arena: full path and aggregate stats per slot.
    span_paths: Vec<String>,
    span_stats: Vec<SpanStats>,
    /// `children[0]` holds slots opened at the root; `children[s + 1]`
    /// holds slots opened while slot `s` was the innermost open span.
    /// Entries are `(label, slot)`; the lists are short (one per distinct
    /// child label), so a linear scan beats any map here.
    children: Vec<Vec<(String, usize)>>,
    /// Slots of currently open spans, outermost first.
    stack: Vec<usize>,
}

impl Default for Inner {
    fn default() -> Self {
        Inner {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            span_paths: Vec::new(),
            span_stats: Vec::new(),
            children: vec![Vec::new()],
            stack: Vec::new(),
        }
    }
}

impl Inner {
    /// Resolves `(parent, label)` to a slot, interning on first use.
    fn intern_child(&mut self, parent: Option<usize>, label: &str) -> usize {
        let ci = parent.map_or(0, |p| p + 1);
        if let Some(&(_, slot)) = self.children[ci].iter().find(|(l, _)| l == label) {
            return slot;
        }
        let path = match parent {
            Some(p) => format!("{}/{label}", self.span_paths[p]),
            None => label.to_string(),
        };
        let slot = self.span_paths.len();
        self.span_paths.push(path);
        self.span_stats.push(SpanStats::default());
        self.children.push(Vec::new());
        self.children[ci].push((label.to_string(), slot));
        slot
    }

    /// Resolves a full path to a slot, interning a root-level entry on
    /// first use — for externally recorded durations and merges, where
    /// the path arrives pre-composed. Cold relative to `intern_child`.
    fn intern_full(&mut self, path: &str) -> usize {
        if let Some(slot) = self.span_paths.iter().position(|p| p == path) {
            return slot;
        }
        let slot = self.span_paths.len();
        self.span_paths.push(path.to_string());
        self.span_stats.push(SpanStats::default());
        self.children.push(Vec::new());
        self.children[0].push((path.to_string(), slot));
        slot
    }

    /// Aggregated spans keyed by full path. Duplicate slots for one path
    /// can exist (a path may be interned both via nesting and via
    /// `intern_full`); aggregation folds them.
    fn spans_by_path(&self) -> BTreeMap<String, SpanStats> {
        let mut spans: BTreeMap<String, SpanStats> = BTreeMap::new();
        for (p, s) in self.span_paths.iter().zip(&self.span_stats) {
            match spans.get_mut(p) {
                Some(e) => e.merge(s),
                None => {
                    spans.insert(p.clone(), *s);
                }
            }
        }
        spans
    }
}

/// A shard-local collection of counters, gauges, histograms, and spans.
pub struct Registry {
    enabled: bool,
    inner: RefCell<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Creates a registry whose enablement follows the `IOT_OBS`
    /// environment gate.
    pub fn new() -> Self {
        Self::with_enabled(crate::config::enabled())
    }

    /// Creates a registry with recording explicitly forced on or off,
    /// ignoring the environment — used by tests and by the overhead
    /// benchmark, which measures both modes inside one process.
    pub fn with_enabled(enabled: bool) -> Self {
        Registry {
            enabled,
            inner: RefCell::new(Inner::default()),
        }
    }

    /// Whether this registry records anything.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Adds `delta` to the counter `name`, creating it at zero first.
    pub fn add(&self, name: &str, delta: u64) {
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.borrow_mut();
        match inner.counters.get_mut(name) {
            Some(c) => *c += delta,
            None => {
                inner.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Sets the gauge `name`. Gauges are high-water marks: re-setting
    /// (and merging) keeps the maximum value seen.
    pub fn set_gauge(&self, name: &str, value: f64) {
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.borrow_mut();
        match inner.gauges.get_mut(name) {
            Some(g) => *g = g.max(value),
            None => {
                inner.gauges.insert(name.to_string(), value);
            }
        }
    }

    /// Records one sample into the histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.borrow_mut();
        match inner.histograms.get_mut(name) {
            Some(h) => h.observe(value),
            None => {
                let mut h = Histogram::default();
                h.observe(value);
                inner.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// Opens a span named `label`, nested under any span currently open
    /// on this registry. The returned guard records wall-clock and call
    /// count into the `parent/…/label` path when it drops.
    pub fn span(&self, label: &str) -> SpanGuard<'_> {
        if !self.enabled {
            return SpanGuard {
                reg: self,
                start: None,
                depth: 0,
                slot: 0,
            };
        }
        let mut inner = self.inner.borrow_mut();
        let parent = inner.stack.last().copied();
        let slot = inner.intern_child(parent, label);
        inner.stack.push(slot);
        let depth = inner.stack.len();
        SpanGuard {
            reg: self,
            start: Some(Instant::now()),
            depth,
            slot,
        }
    }

    /// Records an externally timed duration against a span path — for
    /// regions where an RAII guard cannot live (e.g. around a closure
    /// that needs exclusive access to the structure owning the registry).
    pub fn record_ns(&self, path: &str, d: Duration) {
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.borrow_mut();
        let slot = inner.intern_full(path);
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        inner.span_stats[slot].record(ns);
    }

    /// Folds `other` into `self`. Merged data combines regardless of
    /// either registry's enablement (enablement only gates recording).
    pub fn merge(&self, other: Registry) {
        let other = other.inner.into_inner();
        let other_spans = other.spans_by_path();
        let mut inner = self.inner.borrow_mut();
        for (k, v) in other.counters {
            *inner.counters.entry(k).or_insert(0) += v;
        }
        for (k, v) in other.gauges {
            inner
                .gauges
                .entry(k)
                .and_modify(|g| *g = g.max(v))
                .or_insert(v);
        }
        for (k, v) in other.histograms {
            match inner.histograms.get_mut(&k) {
                Some(h) => h.merge(&v),
                None => {
                    inner.histograms.insert(k, v);
                }
            }
        }
        for (path, stats) in other_spans {
            let slot = inner.intern_full(&path);
            inner.span_stats[slot].merge(&stats);
        }
    }

    /// Current value of a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.borrow().counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.inner.borrow().gauges.get(name).copied()
    }

    /// Aggregate stats of a span path.
    pub fn span_stats(&self, path: &str) -> Option<SpanStats> {
        let inner = self.inner.borrow();
        let mut acc: Option<SpanStats> = None;
        for (p, s) in inner.span_paths.iter().zip(&inner.span_stats) {
            if p == path {
                match &mut acc {
                    Some(a) => a.merge(s),
                    None => acc = Some(*s),
                }
            }
        }
        acc
    }

    /// A point-in-time copy of everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.borrow();
        Snapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner.histograms.clone(),
            spans: inner.spans_by_path(),
        }
    }

    fn close_span(&self, depth: usize, slot: usize, elapsed: Duration) {
        let mut inner = self.inner.borrow_mut();
        // Guards normally drop innermost-first; truncating below this
        // guard's depth also closes any leaked inner spans, and a guard
        // outliving its parent still records under the slot resolved at
        // open time — out-of-order drops cannot corrupt the stack.
        inner.stack.truncate(depth.saturating_sub(1));
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        inner.span_stats[slot].record(ns);
    }
}

/// RAII guard returned by [`Registry::span`]; records on drop.
pub struct SpanGuard<'a> {
    reg: &'a Registry,
    start: Option<Instant>,
    depth: usize,
    slot: usize,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.reg.close_span(self.depth, self.slot, start.elapsed());
        }
    }
}

/// Owned copy of a registry's contents, consumed by report building.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// High-water-mark gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Fixed-bucket histograms.
    pub histograms: BTreeMap<String, Histogram>,
    /// Aggregated spans keyed by `parent/…/label` path.
    pub spans: BTreeMap<String, SpanStats>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let r = Registry::with_enabled(false);
        r.add("c", 5);
        r.set_gauge("g", 1.0);
        r.observe("h", 7);
        {
            let _s = r.span("outer");
        }
        r.record_ns("manual", Duration::from_millis(1));
        assert_eq!(r.snapshot(), Snapshot::default());
    }

    #[test]
    fn counters_and_gauges() {
        let r = Registry::with_enabled(true);
        r.add("c", 2);
        r.add("c", 3);
        r.add("zero", 0);
        r.set_gauge("g", 2.0);
        r.set_gauge("g", 1.0); // high-water mark keeps 2.0
        assert_eq!(r.counter("c"), 5);
        assert_eq!(r.counter("zero"), 0);
        assert!(r.snapshot().counters.contains_key("zero"));
        assert_eq!(r.gauge("g"), Some(2.0));
    }

    #[test]
    fn span_nesting_builds_paths() {
        let r = Registry::with_enabled(true);
        {
            let _a = r.span("a");
            for _ in 0..3 {
                let _b = r.span("b");
                let _c = r.span("c");
            }
        }
        {
            let _a = r.span("a");
        }
        let snap = r.snapshot();
        assert_eq!(snap.spans["a"].calls, 2);
        assert_eq!(snap.spans["a/b"].calls, 3);
        assert_eq!(snap.spans["a/b/c"].calls, 3);
        assert!(!snap.spans.contains_key("b"), "nesting must use full paths");
        // Parent wall-clock covers its children.
        assert!(snap.spans["a"].total_ns >= snap.spans["a/b"].total_ns);
        assert!(snap.spans["a/b"].total_ns >= snap.spans["a/b/c"].total_ns);
    }

    #[test]
    fn same_label_under_different_parents_stays_distinct() {
        let r = Registry::with_enabled(true);
        {
            let _a = r.span("a");
            let _w = r.span("work");
        }
        {
            let _b = r.span("b");
            let _w = r.span("work");
        }
        let snap = r.snapshot();
        assert_eq!(snap.spans["a/work"].calls, 1);
        assert_eq!(snap.spans["b/work"].calls, 1);
        assert!(!snap.spans.contains_key("work"));
    }

    #[test]
    fn record_ns_and_nested_spans_share_one_path() {
        let r = Registry::with_enabled(true);
        r.record_ns("shard", Duration::from_millis(2));
        {
            let _s = r.span("shard");
        }
        let snap = r.snapshot();
        assert_eq!(snap.spans["shard"].calls, 2);
        assert_eq!(r.span_stats("shard").unwrap().calls, 2);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let build = |counts: &[(&str, u64)], span_ns: &[(&str, u64)]| {
            let r = Registry::with_enabled(true);
            for &(k, v) in counts {
                r.add(k, v);
                r.observe("values", v);
            }
            for &(p, ns) in span_ns {
                r.record_ns(p, Duration::from_nanos(ns));
            }
            r
        };
        let specs: [(&[(&str, u64)], &[(&str, u64)]); 3] = [
            (&[("x", 1), ("y", 10)], &[("s", 100)]),
            (&[("x", 2)], &[("s", 50), ("t", 5)]),
            (&[("y", 3), ("z", 7)], &[("t", 9)]),
        ];
        // ((a ⊕ b) ⊕ c)
        let left = build(specs[0].0, specs[0].1);
        left.merge(build(specs[1].0, specs[1].1));
        left.merge(build(specs[2].0, specs[2].1));
        // (c ⊕ (b ⊕ a)) — different order and grouping.
        let inner = build(specs[1].0, specs[1].1);
        inner.merge(build(specs[0].0, specs[0].1));
        let right = build(specs[2].0, specs[2].1);
        right.merge(inner);
        assert_eq!(left.snapshot(), right.snapshot());
        assert_eq!(left.counter("x"), 3);
        assert_eq!(left.counter("y"), 13);
        assert_eq!(left.snapshot().spans["s"].calls, 2);
    }

    #[test]
    fn out_of_order_guard_drop_keeps_stack_sane() {
        let r = Registry::with_enabled(true);
        let a = r.span("a");
        let b = r.span("b");
        drop(a); // closes a (and truncates the leaked b)
        drop(b); // still records under the slot resolved at open time
        let snap = r.snapshot();
        assert_eq!(snap.spans["a"].calls, 1);
        assert_eq!(snap.spans["a/b"].calls, 1);
        let _after = r.span("after");
        drop(_after);
        assert!(r.snapshot().spans.contains_key("after"));
    }
}
