//! The shard-local metric registry.
//!
//! A [`Registry`] is owned by exactly one worker (it is deliberately not
//! `Sync`): recording never takes a lock, mirroring how each pipeline
//! worker owns a private `PipelineShard`. When the shards fold, the
//! registries [`merge`](Registry::merge); counter, histogram, and span
//! merges are associative and commutative, so the merged registry is
//! independent of worker count and fold order. Gauges merge by maximum
//! (they record high-water marks / topology facts, not sums).
//!
//! Span paths are interned into a slot arena on first use: opening a
//! span peeks the stack, resolves `(parent, label)` to a slot with a
//! short linear scan, and closing records into `stats[slot]` — after the
//! first occurrence of a path, the hot path allocates nothing and never
//! compares full path strings. This keeps per-experiment instrumentation
//! overhead in the low microseconds (gated <5% end to end by
//! `obs_check`).
//!
//! Each enabled registry also owns a fixed-capacity
//! [`EventRing`](crate::events::EventRing): span opens/closes and
//! counter increments additionally append timestamped events, and
//! [`Registry::merge`] folds the shards' rings into a single global
//! [`Timeline`] retrievable via [`Registry::timeline`]. Span durations
//! are recorded into per-path [`Histogram`]s alongside the aggregate
//! [`SpanStats`], so reports can derive p50/p95 from exactly the same
//! bucket bounds the Prometheus exporter emits.

use crate::alloc::{self, AllocStats};
use crate::events::{Event, EventKind, EventRing, Timeline};
use crate::metrics::Histogram;
use crate::span::SpanStats;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

fn intern_label(labels: &mut Vec<String>, label: &str) -> u32 {
    if let Some(i) = labels.iter().position(|l| l == label) {
        return i as u32;
    }
    labels.push(label.to_string());
    (labels.len() - 1) as u32
}

struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    /// Interned span arena: full path, aggregate stats, and duration
    /// histogram per slot.
    span_paths: Vec<String>,
    span_stats: Vec<SpanStats>,
    span_hists: Vec<Histogram>,
    /// Heap traffic charged to each slot while its span was open (only
    /// populated when the instrumented allocator is counting; all-zero
    /// entries are dropped from snapshots so reports stay clean when
    /// memory profiling is off).
    span_allocs: Vec<AllocStats>,
    /// `children[0]` holds slots opened at the root; `children[s + 1]`
    /// holds slots opened while slot `s` was the innermost open span.
    /// Entries are `(label, slot)`; the lists are short (one per distinct
    /// child label), so a linear scan beats any map here.
    children: Vec<Vec<(String, usize)>>,
    /// Slots of currently open spans, outermost first.
    stack: Vec<usize>,
    /// Flight recorder (None when events are disabled).
    events: Option<EventRing>,
    /// Events folded in from merged shard registries, indices into
    /// `merged_labels`.
    merged_events: Vec<Event>,
    merged_labels: Vec<String>,
    merged_overwritten: u64,
}

impl Inner {
    fn new(events: Option<EventRing>) -> Self {
        Inner {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            span_paths: Vec::new(),
            span_stats: Vec::new(),
            span_hists: Vec::new(),
            span_allocs: Vec::new(),
            children: vec![Vec::new()],
            stack: Vec::new(),
            events,
            merged_events: Vec::new(),
            merged_labels: Vec::new(),
            merged_overwritten: 0,
        }
    }

    /// Resolves `(parent, label)` to a slot, interning on first use.
    fn intern_child(&mut self, parent: Option<usize>, label: &str) -> usize {
        let ci = parent.map_or(0, |p| p + 1);
        if let Some(&(_, slot)) = self.children[ci].iter().find(|(l, _)| l == label) {
            return slot;
        }
        let path = match parent {
            Some(p) => format!("{}/{label}", self.span_paths[p]),
            None => label.to_string(),
        };
        let slot = self.span_paths.len();
        self.span_paths.push(path);
        self.span_stats.push(SpanStats::default());
        self.span_hists.push(Histogram::default());
        self.span_allocs.push(AllocStats::default());
        self.children.push(Vec::new());
        self.children[ci].push((label.to_string(), slot));
        slot
    }

    /// Resolves a full path to a slot, interning a root-level entry on
    /// first use — for externally recorded durations and merges, where
    /// the path arrives pre-composed. Cold relative to `intern_child`.
    fn intern_full(&mut self, path: &str) -> usize {
        if let Some(slot) = self.span_paths.iter().position(|p| p == path) {
            return slot;
        }
        let slot = self.span_paths.len();
        self.span_paths.push(path.to_string());
        self.span_stats.push(SpanStats::default());
        self.span_hists.push(Histogram::default());
        self.span_allocs.push(AllocStats::default());
        self.children.push(Vec::new());
        self.children[0].push((path.to_string(), slot));
        slot
    }

    /// Aggregated spans keyed by full path. Duplicate slots for one path
    /// can exist (a path may be interned both via nesting and via
    /// `intern_full`); aggregation folds them.
    fn spans_by_path(&self) -> BTreeMap<String, SpanStats> {
        let mut spans: BTreeMap<String, SpanStats> = BTreeMap::new();
        for (p, s) in self.span_paths.iter().zip(&self.span_stats) {
            match spans.get_mut(p) {
                Some(e) => e.merge(s),
                None => {
                    spans.insert(p.clone(), *s);
                }
            }
        }
        spans
    }

    /// Aggregated per-span heap traffic keyed by full path; all-zero
    /// entries are omitted so the map is empty (and serializes to
    /// nothing) whenever the allocator never counted.
    fn span_allocs_by_path(&self) -> BTreeMap<String, AllocStats> {
        let mut allocs: BTreeMap<String, AllocStats> = BTreeMap::new();
        for (p, a) in self.span_paths.iter().zip(&self.span_allocs) {
            if a.is_zero() {
                continue;
            }
            match allocs.get_mut(p) {
                Some(e) => e.merge(a),
                None => {
                    allocs.insert(p.clone(), *a);
                }
            }
        }
        allocs
    }

    /// Aggregated span-duration histograms keyed by full path.
    fn span_hists_by_path(&self) -> BTreeMap<String, Histogram> {
        let mut hists: BTreeMap<String, Histogram> = BTreeMap::new();
        for (p, h) in self.span_paths.iter().zip(&self.span_hists) {
            match hists.get_mut(p) {
                Some(e) => e.merge(h),
                None => {
                    hists.insert(p.clone(), h.clone());
                }
            }
        }
        hists
    }

    /// Folds `(labels, events)` into the merged-event store, remapping
    /// label indices into `merged_labels`.
    fn fold_events(&mut self, labels: &[String], events: Vec<Event>, overwritten: u64) {
        if events.is_empty() && overwritten == 0 {
            return;
        }
        let remap: Vec<u32> = labels
            .iter()
            .map(|l| intern_label(&mut self.merged_labels, l))
            .collect();
        self.merged_events.extend(events.into_iter().map(|mut e| {
            e.label = remap[e.label as usize];
            e
        }));
        self.merged_overwritten += overwritten;
    }
}

/// A shard-local collection of counters, gauges, histograms, spans, and
/// flight-recorder events.
pub struct Registry {
    enabled: bool,
    inner: RefCell<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Creates a registry whose enablement follows the `IOT_OBS`
    /// environment gate.
    pub fn new() -> Self {
        Self::with_enabled(crate::config::enabled())
    }

    /// Creates a registry with recording explicitly forced on or off,
    /// ignoring the environment — used by tests and by the overhead
    /// benchmark, which measures both modes inside one process. The
    /// event-ring capacity still follows `IOT_OBS_EVENTS`.
    pub fn with_enabled(enabled: bool) -> Self {
        Self::with_event_capacity(enabled, crate::config::global().event_capacity)
    }

    /// Creates a registry with both recording and the flight-recorder
    /// ring capacity forced (0 disables events while keeping aggregate
    /// metrics).
    pub fn with_event_capacity(enabled: bool, event_capacity: usize) -> Self {
        let events = (enabled && event_capacity > 0)
            .then(|| EventRing::with_capacity(event_capacity));
        Registry {
            enabled,
            inner: RefCell::new(Inner::new(events)),
        }
    }

    /// Whether this registry records anything.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Whether this registry records flight-recorder events.
    pub fn events_enabled(&self) -> bool {
        self.enabled && self.inner.borrow().events.is_some()
    }

    /// Sets the worker track stamped on this registry's events (0 =
    /// driver; shard workers use 1..).
    pub fn set_worker(&self, worker: u32) {
        if let Some(ring) = self.inner.borrow_mut().events.as_mut() {
            ring.set_worker(worker);
        }
    }

    /// Enters a deterministic event stream (see `crate::events`); all
    /// events until [`Registry::end_stream`] carry `stream` and a
    /// logical per-stream sequence number.
    pub fn begin_stream(&self, stream: u64) {
        if let Some(ring) = self.inner.borrow_mut().events.as_mut() {
            ring.begin_stream(stream);
        }
    }

    /// Leaves the current event stream.
    pub fn end_stream(&self) {
        if let Some(ring) = self.inner.borrow_mut().events.as_mut() {
            ring.end_stream();
        }
    }

    /// Records an instantaneous mark event (e.g. `quarantine`).
    pub fn mark(&self, label: &str) {
        if !self.enabled {
            return;
        }
        if let Some(ring) = self.inner.borrow_mut().events.as_mut() {
            ring.record(EventKind::Mark, label, 0);
        }
    }

    /// Adds `delta` to the counter `name`, creating it at zero first.
    pub fn add(&self, name: &str, delta: u64) {
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.borrow_mut();
        let Inner {
            counters, events, ..
        } = &mut *inner;
        match counters.get_mut(name) {
            Some(c) => *c += delta,
            None => {
                counters.insert(name.to_string(), delta);
            }
        }
        if let Some(ring) = events.as_mut() {
            ring.record(EventKind::Counter, name, delta);
        }
    }

    /// Sets the gauge `name`. Gauges are high-water marks: re-setting
    /// (and merging) keeps the maximum value seen.
    pub fn set_gauge(&self, name: &str, value: f64) {
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.borrow_mut();
        match inner.gauges.get_mut(name) {
            Some(g) => *g = g.max(value),
            None => {
                inner.gauges.insert(name.to_string(), value);
            }
        }
    }

    /// Records one sample into the histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.borrow_mut();
        match inner.histograms.get_mut(name) {
            Some(h) => h.observe(value),
            None => {
                let mut h = Histogram::default();
                h.observe(value);
                inner.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// Opens a span named `label`, nested under any span currently open
    /// on this registry. The returned guard records wall-clock and call
    /// count into the `parent/…/label` path when it drops.
    pub fn span(&self, label: &str) -> SpanGuard<'_> {
        if !self.enabled {
            return SpanGuard {
                reg: self,
                start: None,
                depth: 0,
                slot: 0,
                alloc_start: None,
            };
        }
        let mut inner = self.inner.borrow_mut();
        let parent = inner.stack.last().copied();
        let slot = inner.intern_child(parent, label);
        inner.stack.push(slot);
        let depth = inner.stack.len();
        let Inner {
            span_paths, events, ..
        } = &mut *inner;
        // One clock read serves both the aggregate timer and the begin
        // event's timestamp.
        let start = Instant::now();
        if let Some(ring) = events.as_mut() {
            ring.record_at(
                crate::events::ts_ns_at(start),
                EventKind::SpanBegin,
                &span_paths[slot],
                0,
            );
        }
        // Snapshot the thread's allocation counters *after* the span's
        // own bookkeeping above, so first-use path interning is not
        // charged to the span. Nested spans include their children's
        // traffic, exactly as wall-clock does.
        let alloc_start = alloc::enabled().then(alloc::thread_snapshot);
        SpanGuard {
            reg: self,
            start: Some(start),
            depth,
            slot,
            alloc_start,
        }
    }

    /// Records an externally timed duration against a span path — for
    /// regions where an RAII guard cannot live (e.g. around a closure
    /// that needs exclusive access to the structure owning the registry).
    /// No flight-recorder events are emitted: the region's begin time is
    /// unknown by construction.
    pub fn record_ns(&self, path: &str, d: Duration) {
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.borrow_mut();
        let slot = inner.intern_full(path);
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        inner.span_stats[slot].record(ns);
        inner.span_hists[slot].observe(ns);
    }

    /// Records externally measured heap traffic against a span path —
    /// the allocation analogue of [`Registry::record_ns`], for fused
    /// regions that accumulate per-stage deltas manually instead of
    /// opening one guard per stage.
    pub fn record_alloc(&self, path: &str, stats: AllocStats) {
        if !self.enabled || stats.is_zero() {
            return;
        }
        let mut inner = self.inner.borrow_mut();
        let slot = inner.intern_full(path);
        inner.span_allocs[slot].merge(&stats);
    }

    /// Emits a counter-sample flight-recorder event *without* touching
    /// the counters map — for run-dependent quantities (live heap
    /// bytes) that belong on a Chrome-trace counter track but must stay
    /// out of the deterministic counter subset. Callers only sample at
    /// stream-free boundaries (shard start/end, fold points), so the
    /// deterministic trace view — stream events only — never sees one.
    pub fn counter_sample(&self, name: &str, value: u64) {
        if !self.enabled {
            return;
        }
        if let Some(ring) = self.inner.borrow_mut().events.as_mut() {
            ring.record(EventKind::Counter, name, value);
        }
    }

    /// Folds `other` into `self`. Merged data combines regardless of
    /// either registry's enablement (enablement only gates recording).
    pub fn merge(&self, other: Registry) {
        let mut other = other.inner.into_inner();
        let other_spans = other.spans_by_path();
        let other_hists = other.span_hists_by_path();
        let other_allocs = other.span_allocs_by_path();
        let other_ring = other.events.take().map(EventRing::into_parts);
        let mut inner = self.inner.borrow_mut();
        for (k, v) in other.counters {
            *inner.counters.entry(k).or_insert(0) += v;
        }
        for (k, v) in other.gauges {
            inner
                .gauges
                .entry(k)
                .and_modify(|g| *g = g.max(v))
                .or_insert(v);
        }
        for (k, v) in other.histograms {
            match inner.histograms.get_mut(&k) {
                Some(h) => h.merge(&v),
                None => {
                    inner.histograms.insert(k, v);
                }
            }
        }
        for (path, stats) in other_spans {
            let slot = inner.intern_full(&path);
            inner.span_stats[slot].merge(&stats);
        }
        for (path, hist) in other_hists {
            let slot = inner.intern_full(&path);
            inner.span_hists[slot].merge(&hist);
        }
        for (path, stats) in other_allocs {
            let slot = inner.intern_full(&path);
            inner.span_allocs[slot].merge(&stats);
        }
        // Fold the shard's ring (and anything it had itself merged) into
        // the unbounded merged-event store; the global timeline is the
        // union of every worker's surviving window.
        if let Some((labels, events, overwritten)) = other_ring {
            inner.fold_events(&labels, events, overwritten);
        }
        let merged_labels = std::mem::take(&mut other.merged_labels);
        let merged_events = std::mem::take(&mut other.merged_events);
        inner.fold_events(&merged_labels, merged_events, other.merged_overwritten);
    }

    /// Current value of a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.borrow().counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.inner.borrow().gauges.get(name).copied()
    }

    /// Aggregate stats of a span path.
    pub fn span_stats(&self, path: &str) -> Option<SpanStats> {
        let inner = self.inner.borrow();
        let mut acc: Option<SpanStats> = None;
        for (p, s) in inner.span_paths.iter().zip(&inner.span_stats) {
            if p == path {
                match &mut acc {
                    Some(a) => a.merge(s),
                    None => acc = Some(*s),
                }
            }
        }
        acc
    }

    /// A point-in-time copy of everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.borrow();
        Snapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner.histograms.clone(),
            spans: inner.spans_by_path(),
            span_durations: inner.span_hists_by_path(),
            span_allocs: inner.span_allocs_by_path(),
        }
    }

    /// The global event timeline: this registry's own ring plus every
    /// ring folded in through [`Registry::merge`], label-resolved and
    /// sorted by `(timestamp, worker, seq)`.
    pub fn timeline(&self) -> Timeline {
        let inner = self.inner.borrow();
        let mut labels = inner.merged_labels.clone();
        let mut events = inner.merged_events.clone();
        let mut overwritten = inner.merged_overwritten;
        if let Some(ring) = inner.events.as_ref() {
            let (own_labels, own_events, own_overwritten) = ring.parts();
            let remap: Vec<u32> = own_labels
                .iter()
                .map(|l| intern_label(&mut labels, l))
                .collect();
            events.extend(own_events.into_iter().map(|mut e| {
                e.label = remap[e.label as usize];
                e
            }));
            overwritten += own_overwritten;
        }
        Timeline::new(labels, events, overwritten)
    }

    fn close_span(
        &self,
        depth: usize,
        slot: usize,
        start: Instant,
        elapsed: Duration,
        alloc_delta: Option<AllocStats>,
    ) {
        let mut inner = self.inner.borrow_mut();
        if let Some(d) = alloc_delta {
            if !d.is_zero() {
                inner.span_allocs[slot].merge(&d);
            }
        }
        // Guards normally drop innermost-first; truncating below this
        // guard's depth also closes any leaked inner spans, and a guard
        // outliving its parent still records under the slot resolved at
        // open time — out-of-order drops cannot corrupt the stack.
        inner.stack.truncate(depth.saturating_sub(1));
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        inner.span_stats[slot].record(ns);
        inner.span_hists[slot].observe(ns);
        let Inner {
            span_paths, events, ..
        } = &mut *inner;
        if let Some(ring) = events.as_mut() {
            // End timestamp derived from begin + elapsed: closing a span
            // costs no additional clock read.
            let end_ts = crate::events::ts_ns_at(start).saturating_add(ns);
            ring.record_at(end_ts, EventKind::SpanEnd, &span_paths[slot], 0);
        }
    }
}

/// RAII guard returned by [`Registry::span`]; records on drop.
pub struct SpanGuard<'a> {
    reg: &'a Registry,
    start: Option<Instant>,
    depth: usize,
    slot: usize,
    /// Thread allocation counters at open time, captured only when the
    /// instrumented allocator was counting; the close charges the delta
    /// to this span's path.
    alloc_start: Option<AllocStats>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let elapsed = start.elapsed();
            let alloc_delta = self
                .alloc_start
                .map(|s| alloc::thread_snapshot().since(&s));
            self.reg
                .close_span(self.depth, self.slot, start, elapsed, alloc_delta);
        }
    }
}

/// Owned copy of a registry's contents, consumed by report building.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// High-water-mark gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Fixed-bucket histograms.
    pub histograms: BTreeMap<String, Histogram>,
    /// Aggregated spans keyed by `parent/…/label` path.
    pub spans: BTreeMap<String, SpanStats>,
    /// Per-path span duration histograms (nanoseconds), sharing bucket
    /// bounds with every other [`Histogram`] so table quantiles and the
    /// Prometheus exposition can never disagree.
    pub span_durations: BTreeMap<String, Histogram>,
    /// Heap traffic attributed to each span path (empty unless the
    /// instrumented allocator was counting — see [`crate::alloc`]).
    /// Allocation counts depend on sharding, so this section lives with
    /// spans in the run-dependent report, never in the deterministic
    /// subset.
    pub span_allocs: BTreeMap<String, AllocStats>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let r = Registry::with_enabled(false);
        r.add("c", 5);
        r.set_gauge("g", 1.0);
        r.observe("h", 7);
        {
            let _s = r.span("outer");
        }
        r.record_ns("manual", Duration::from_millis(1));
        r.mark("m");
        assert_eq!(r.snapshot(), Snapshot::default());
        assert!(r.timeline().events.is_empty());
    }

    #[test]
    fn counters_and_gauges() {
        let r = Registry::with_enabled(true);
        r.add("c", 2);
        r.add("c", 3);
        r.add("zero", 0);
        r.set_gauge("g", 2.0);
        r.set_gauge("g", 1.0); // high-water mark keeps 2.0
        assert_eq!(r.counter("c"), 5);
        assert_eq!(r.counter("zero"), 0);
        assert!(r.snapshot().counters.contains_key("zero"));
        assert_eq!(r.gauge("g"), Some(2.0));
    }

    #[test]
    fn span_nesting_builds_paths() {
        let r = Registry::with_enabled(true);
        {
            let _a = r.span("a");
            for _ in 0..3 {
                let _b = r.span("b");
                let _c = r.span("c");
            }
        }
        {
            let _a = r.span("a");
        }
        let snap = r.snapshot();
        assert_eq!(snap.spans["a"].calls, 2);
        assert_eq!(snap.spans["a/b"].calls, 3);
        assert_eq!(snap.spans["a/b/c"].calls, 3);
        assert!(!snap.spans.contains_key("b"), "nesting must use full paths");
        // Parent wall-clock covers its children.
        assert!(snap.spans["a"].total_ns >= snap.spans["a/b"].total_ns);
        assert!(snap.spans["a/b"].total_ns >= snap.spans["a/b/c"].total_ns);
        // Duration histograms track the same paths and call counts.
        assert_eq!(snap.span_durations["a"].count(), 2);
        assert_eq!(snap.span_durations["a/b"].count(), 3);
    }

    #[test]
    fn same_label_under_different_parents_stays_distinct() {
        let r = Registry::with_enabled(true);
        {
            let _a = r.span("a");
            let _w = r.span("work");
        }
        {
            let _b = r.span("b");
            let _w = r.span("work");
        }
        let snap = r.snapshot();
        assert_eq!(snap.spans["a/work"].calls, 1);
        assert_eq!(snap.spans["b/work"].calls, 1);
        assert!(!snap.spans.contains_key("work"));
    }

    #[test]
    fn record_ns_and_nested_spans_share_one_path() {
        let r = Registry::with_enabled(true);
        r.record_ns("shard", Duration::from_millis(2));
        {
            let _s = r.span("shard");
        }
        let snap = r.snapshot();
        assert_eq!(snap.spans["shard"].calls, 2);
        assert_eq!(snap.span_durations["shard"].count(), 2);
        assert_eq!(r.span_stats("shard").unwrap().calls, 2);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let build = |counts: &[(&str, u64)], span_ns: &[(&str, u64)]| {
            // Event capacity 0: wall-clock event timestamps are
            // run-dependent, so only the aggregate sections take part in
            // the snapshot-equality check.
            let r = Registry::with_event_capacity(true, 0);
            for &(k, v) in counts {
                r.add(k, v);
                r.observe("values", v);
            }
            for &(p, ns) in span_ns {
                r.record_ns(p, Duration::from_nanos(ns));
            }
            r
        };
        let specs: [(&[(&str, u64)], &[(&str, u64)]); 3] = [
            (&[("x", 1), ("y", 10)], &[("s", 100)]),
            (&[("x", 2)], &[("s", 50), ("t", 5)]),
            (&[("y", 3), ("z", 7)], &[("t", 9)]),
        ];
        // ((a ⊕ b) ⊕ c)
        let left = build(specs[0].0, specs[0].1);
        left.merge(build(specs[1].0, specs[1].1));
        left.merge(build(specs[2].0, specs[2].1));
        // (c ⊕ (b ⊕ a)) — different order and grouping.
        let inner = build(specs[1].0, specs[1].1);
        inner.merge(build(specs[0].0, specs[0].1));
        let right = build(specs[2].0, specs[2].1);
        right.merge(inner);
        assert_eq!(left.snapshot(), right.snapshot());
        assert_eq!(left.counter("x"), 3);
        assert_eq!(left.counter("y"), 13);
        assert_eq!(left.snapshot().spans["s"].calls, 2);
        assert_eq!(left.snapshot().span_durations["s"].count(), 2);
    }

    #[test]
    fn out_of_order_guard_drop_keeps_stack_sane() {
        let r = Registry::with_enabled(true);
        let a = r.span("a");
        let b = r.span("b");
        drop(a); // closes a (and truncates the leaked b)
        drop(b); // still records under the slot resolved at open time
        let snap = r.snapshot();
        assert_eq!(snap.spans["a"].calls, 1);
        assert_eq!(snap.spans["a/b"].calls, 1);
        let _after = r.span("after");
        drop(_after);
        assert!(r.snapshot().spans.contains_key("after"));
    }

    #[test]
    fn spans_and_counters_emit_events() {
        let r = Registry::with_event_capacity(true, 64);
        assert!(r.events_enabled());
        r.set_worker(3);
        r.begin_stream(77);
        {
            let _s = r.span("work");
            r.add("n", 5);
        }
        r.end_stream();
        r.mark("done");
        let t = r.timeline();
        let kinds: Vec<(EventKind, &str)> = t
            .events
            .iter()
            .map(|e| (e.kind, t.label(e)))
            .collect();
        assert_eq!(
            kinds,
            vec![
                (EventKind::SpanBegin, "work"),
                (EventKind::Counter, "n"),
                (EventKind::SpanEnd, "work"),
                (EventKind::Mark, "done"),
            ]
        );
        assert!(t.events.iter().all(|e| e.worker == 3));
        assert_eq!(t.events[0].stream, 77);
        assert_eq!(t.events[3].stream, 0, "mark is outside the stream");
    }

    #[test]
    fn merge_folds_event_rings_into_one_timeline() {
        let target = Registry::with_event_capacity(true, 16);
        target.set_worker(0);
        target.mark("driver");
        for w in 1..=2u32 {
            let shard = Registry::with_event_capacity(true, 16);
            shard.set_worker(w);
            shard.begin_stream(u64::from(w) * 100);
            let _s = shard.span("ingest");
            drop(_s);
            shard.end_stream();
            target.merge(shard);
        }
        let t = target.timeline();
        assert_eq!(t.events.len(), 5, "1 driver mark + 2×(begin+end)");
        let workers: std::collections::BTreeSet<u32> =
            t.events.iter().map(|e| e.worker).collect();
        assert_eq!(workers.into_iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        // Chained merges preserve already-folded events.
        let outer = Registry::with_event_capacity(true, 16);
        outer.merge(target);
        assert_eq!(outer.timeline().events.len(), 5);
    }

    #[test]
    fn span_allocs_attribute_heap_traffic_to_the_open_span() {
        let _g = alloc::test_lock();
        let was = alloc::enabled();
        alloc::set_enabled(true);
        let r = Registry::with_event_capacity(true, 0);
        {
            let _outer = r.span("outer");
            let v: Vec<u8> = std::hint::black_box(Vec::with_capacity(8192));
            drop(v);
            {
                let _inner = r.span("leaf");
                let v: Vec<u8> = std::hint::black_box(Vec::with_capacity(2048));
                drop(v);
            }
        }
        alloc::set_enabled(was);
        let snap = r.snapshot();
        let outer = snap.span_allocs["outer"];
        let leaf = snap.span_allocs["outer/leaf"];
        assert!(leaf.bytes_allocated >= 2048, "leaf: {leaf:?}");
        // The parent includes its child's traffic, as wall-clock does.
        assert!(
            outer.bytes_allocated >= 8192 + leaf.bytes_allocated,
            "outer: {outer:?} leaf: {leaf:?}"
        );
        assert!(outer.frees >= 2);
    }

    #[test]
    fn snapshot_omits_zero_alloc_spans() {
        // Allocator off: spans record time but span_allocs stays empty,
        // so reports with IOT_OBS_ALLOC=0 serialize no alloc fields.
        let _g = alloc::test_lock();
        let was = alloc::enabled();
        alloc::set_enabled(false);
        let r = Registry::with_event_capacity(true, 0);
        {
            let _s = r.span("quiet");
            let v: Vec<u8> = std::hint::black_box(Vec::with_capacity(4096));
            drop(v);
        }
        alloc::set_enabled(was);
        let snap = r.snapshot();
        assert_eq!(snap.spans["quiet"].calls, 1);
        assert!(snap.span_allocs.is_empty());
    }

    #[test]
    fn record_alloc_merges_by_path_like_record_ns() {
        let a = Registry::with_event_capacity(true, 0);
        let b = Registry::with_event_capacity(true, 0);
        let stats = |bytes, n| AllocStats {
            bytes_allocated: bytes,
            allocs: n,
            bytes_freed: bytes / 2,
            frees: n / 2,
        };
        a.record_alloc("ingest/pii", stats(100, 4));
        b.record_alloc("ingest/pii", stats(60, 2));
        b.record_alloc("ingest/destinations", stats(8, 2));
        b.record_alloc("zero", AllocStats::default()); // no-op
        a.merge(b);
        let snap = a.snapshot();
        assert_eq!(snap.span_allocs["ingest/pii"], stats(160, 6));
        assert_eq!(snap.span_allocs["ingest/destinations"], stats(8, 2));
        assert!(!snap.span_allocs.contains_key("zero"));
    }

    #[test]
    fn counter_sample_emits_event_without_counter() {
        let r = Registry::with_event_capacity(true, 16);
        r.counter_sample("alloc.live_bytes", 12345);
        assert_eq!(r.counter("alloc.live_bytes"), 0);
        assert!(!r.snapshot().counters.contains_key("alloc.live_bytes"));
        let t = r.timeline();
        assert_eq!(t.events.len(), 1);
        assert_eq!(t.events[0].kind, EventKind::Counter);
        assert_eq!(t.events[0].delta, 12345);
        assert_eq!(t.events[0].stream, 0, "samples live outside streams");
        // With events disabled it is a complete no-op.
        let quiet = Registry::with_event_capacity(true, 0);
        quiet.counter_sample("alloc.live_bytes", 1);
        assert!(quiet.timeline().events.is_empty());
    }

    #[test]
    fn event_capacity_zero_disables_events_only() {
        let r = Registry::with_event_capacity(true, 0);
        assert!(!r.events_enabled());
        r.add("c", 1);
        {
            let _s = r.span("a");
        }
        assert!(r.timeline().events.is_empty());
        assert_eq!(r.counter("c"), 1);
        assert_eq!(r.snapshot().spans["a"].calls, 1);
    }
}
