//! Instrumented global allocator: per-thread and process-wide heap
//! accounting, gated by `IOT_OBS_ALLOC` and near-zero-cost when off.
//!
//! [`CountingAlloc`] wraps [`std::alloc::System`] and is registered as
//! the crate's `#[global_allocator]`, so every binary that links
//! `iot-obs` routes its heap traffic through it. When disabled (the
//! default) each allocation pays exactly one relaxed atomic load and a
//! predictable branch; no other state is touched. When enabled
//! (`IOT_OBS_ALLOC=1`, or programmatically via [`set_enabled`]) it
//! maintains:
//!
//! * **thread-local counters** — bytes/count allocated and freed, live
//!   bytes, and a high-water mark, in const-initialized `Cell`s (no
//!   lazy init, no destructor, therefore no recursion into the
//!   allocator and no TLS-teardown hazard);
//! * **process-wide atomics** — the same totals summed across threads,
//!   plus a process live/high-water pair maintained with `fetch_max`.
//!
//! Attribution to pipeline stages does **not** happen here: the
//! allocator only counts. [`Registry::span`](crate::Registry::span)
//! snapshots the thread counters when a span opens and charges the
//! delta to the span's interned path when it closes, so every stage
//! gets an allocation profile alongside its time profile, flowing
//! through the same associative/commutative shard merge.
//!
//! ## Invariants the design leans on
//!
//! * The counting path never allocates: `Cell` arithmetic plus relaxed
//!   atomics only. Reading environment variables allocates, so the
//!   allocator never consults the environment itself — enablement is a
//!   single `AtomicBool` flipped by [`config::global`](crate::config)
//!   (first registry construction) or [`set_enabled`].
//! * A thread that frees memory after its TLS is torn down (possible
//!   during thread exit) falls back to the process-wide atomics via
//!   `try_with`, so process totals stay conserved.
//! * `realloc` counts as free(old) + alloc(new) — total bytes measure
//!   traffic, not peak; peak is what `live`/`high_water` capture.

#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering::Relaxed};

/// Whether the allocator is currently counting.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Process-wide totals (monotonic while enabled).
static TOTAL_BYTES: AtomicU64 = AtomicU64::new(0);
static TOTAL_ALLOCS: AtomicU64 = AtomicU64::new(0);
static TOTAL_FREED_BYTES: AtomicU64 = AtomicU64::new(0);
static TOTAL_FREES: AtomicU64 = AtomicU64::new(0);
/// Process-wide live bytes (allocs minus frees; may transiently skew
/// negative if counting was enabled after memory was already live).
static LIVE: AtomicI64 = AtomicI64::new(0);
/// Process-wide high-water of `LIVE` since enablement (or the last
/// [`reset_high_water`]).
static HIGH_WATER: AtomicI64 = AtomicI64::new(0);

struct ThreadCounters {
    bytes_allocated: Cell<u64>,
    allocs: Cell<u64>,
    bytes_freed: Cell<u64>,
    frees: Cell<u64>,
    live: Cell<i64>,
    high_water: Cell<i64>,
}

// Const-initialized: no lazy-init allocation inside the allocator, and
// no interior Drop, so the thread_local has no destructor to run at
// thread exit.
thread_local! {
    static COUNTERS: ThreadCounters = const {
        ThreadCounters {
            bytes_allocated: Cell::new(0),
            allocs: Cell::new(0),
            bytes_freed: Cell::new(0),
            frees: Cell::new(0),
            live: Cell::new(0),
            high_water: Cell::new(0),
        }
    };
}

#[inline]
fn count_alloc(size: usize) {
    let size = size as u64;
    TOTAL_BYTES.fetch_add(size, Relaxed);
    TOTAL_ALLOCS.fetch_add(1, Relaxed);
    let live = LIVE.fetch_add(size as i64, Relaxed) + size as i64;
    HIGH_WATER.fetch_max(live, Relaxed);
    let _ = COUNTERS.try_with(|c| {
        c.bytes_allocated.set(c.bytes_allocated.get() + size);
        c.allocs.set(c.allocs.get() + 1);
        let live = c.live.get() + size as i64;
        c.live.set(live);
        if live > c.high_water.get() {
            c.high_water.set(live);
        }
    });
}

#[inline]
fn count_dealloc(size: usize) {
    let size = size as u64;
    TOTAL_FREED_BYTES.fetch_add(size, Relaxed);
    TOTAL_FREES.fetch_add(1, Relaxed);
    LIVE.fetch_sub(size as i64, Relaxed);
    let _ = COUNTERS.try_with(|c| {
        c.bytes_freed.set(c.bytes_freed.get() + size);
        c.frees.set(c.frees.get() + 1);
        c.live.set(c.live.get() - size as i64);
    });
}

/// The instrumented allocator. Forwards every operation to
/// [`System`]; counts only when [`enabled`] is true.
pub struct CountingAlloc;

// SAFETY: all four methods delegate directly to `System`, which
// upholds the `GlobalAlloc` contract; the counting side never
// allocates (Cell writes + relaxed atomics) and never dereferences the
// returned pointers.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() && ENABLED.load(Relaxed) {
            count_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if ENABLED.load(Relaxed) {
            count_dealloc(layout.size());
        }
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() && ENABLED.load(Relaxed) {
            count_alloc(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() && ENABLED.load(Relaxed) {
            count_dealloc(layout.size());
            count_alloc(new_size);
        }
        p
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Whether allocation counting is currently on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Relaxed)
}

/// Turns allocation counting on or off programmatically (benches and
/// tests; normal runs are driven by `IOT_OBS_ALLOC` through
/// [`config::global`](crate::config::global)).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Relaxed);
}

/// Cumulative allocation counters — either a point-in-time thread
/// snapshot or a delta between two snapshots. All fields are
/// monotonic totals, so deltas subtract field-wise and merge by
/// field-wise addition (associative and commutative, mirroring the
/// registry's counter laws).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Bytes requested from the allocator.
    pub bytes_allocated: u64,
    /// Number of allocations (including the alloc half of reallocs).
    pub allocs: u64,
    /// Bytes returned to the allocator.
    pub bytes_freed: u64,
    /// Number of frees (including the free half of reallocs).
    pub frees: u64,
}

impl AllocStats {
    /// Field-wise sum (the registry merge law).
    pub fn merge(&mut self, other: &AllocStats) {
        self.bytes_allocated += other.bytes_allocated;
        self.allocs += other.allocs;
        self.bytes_freed += other.bytes_freed;
        self.frees += other.frees;
    }

    /// True when no traffic was recorded.
    pub fn is_zero(&self) -> bool {
        self.bytes_allocated == 0 && self.allocs == 0 && self.bytes_freed == 0 && self.frees == 0
    }

    /// The delta from an earlier snapshot of the same thread to this
    /// one (saturating, in case counting was toggled in between).
    pub fn since(&self, earlier: &AllocStats) -> AllocStats {
        AllocStats {
            bytes_allocated: self.bytes_allocated.saturating_sub(earlier.bytes_allocated),
            allocs: self.allocs.saturating_sub(earlier.allocs),
            bytes_freed: self.bytes_freed.saturating_sub(earlier.bytes_freed),
            frees: self.frees.saturating_sub(earlier.frees),
        }
    }
}

/// Snapshot of the calling thread's cumulative counters.
pub fn thread_snapshot() -> AllocStats {
    COUNTERS
        .try_with(|c| AllocStats {
            bytes_allocated: c.bytes_allocated.get(),
            allocs: c.allocs.get(),
            bytes_freed: c.bytes_freed.get(),
            frees: c.frees.get(),
        })
        .unwrap_or_default()
}

/// The calling thread's current live bytes (allocated minus freed on
/// this thread; cross-thread frees make this approximate per thread —
/// process totals stay exact).
pub fn thread_live_bytes() -> i64 {
    COUNTERS.try_with(|c| c.live.get()).unwrap_or(0)
}

/// The calling thread's live-bytes high-water mark.
pub fn thread_high_water_bytes() -> i64 {
    COUNTERS.try_with(|c| c.high_water.get()).unwrap_or(0)
}

/// Process-wide cumulative totals across all threads.
pub fn process_totals() -> AllocStats {
    AllocStats {
        bytes_allocated: TOTAL_BYTES.load(Relaxed),
        allocs: TOTAL_ALLOCS.load(Relaxed),
        bytes_freed: TOTAL_FREED_BYTES.load(Relaxed),
        frees: TOTAL_FREES.load(Relaxed),
    }
}

/// Process-wide live bytes (clamped at zero: counting enabled mid-run
/// can observe more frees than allocs).
pub fn process_live_bytes() -> u64 {
    LIVE.load(Relaxed).max(0) as u64
}

/// Process-wide live-bytes high-water mark since enablement or the
/// last [`reset_high_water`].
pub fn process_high_water_bytes() -> u64 {
    HIGH_WATER.load(Relaxed).max(0) as u64
}

/// Resets the process and calling-thread high-water marks to the
/// current live level, so a bench can measure the peak of *its own*
/// run rather than inherit the process's startup peak.
pub fn reset_high_water() {
    let live = LIVE.load(Relaxed);
    HIGH_WATER.store(live, Relaxed);
    let _ = COUNTERS.try_with(|c| c.high_water.set(c.live.get()));
}

/// Serializes tests that toggle the process-wide `ENABLED` flag — the
/// test harness is multi-threaded and a concurrent toggle would corrupt
/// another test's counts. Shared with the registry's attribution tests.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_counting<R>(f: impl FnOnce() -> R) -> R {
        let _g = test_lock();
        let was = enabled();
        set_enabled(true);
        let r = f();
        set_enabled(was);
        r
    }

    #[test]
    fn disabled_by_default_until_configured() {
        // The raw flag defaults to off; other tests may have toggled
        // it, so only assert the programmatic toggle round-trips.
        with_counting(|| assert!(enabled()));
    }

    #[test]
    fn counts_an_observable_allocation() {
        with_counting(|| {
            let before = thread_snapshot();
            let v: Vec<u8> = std::hint::black_box(Vec::with_capacity(4096));
            let mid = thread_snapshot();
            drop(v);
            let after = thread_snapshot();
            let grow = mid.since(&before);
            assert!(grow.allocs >= 1, "expected ≥1 alloc, got {grow:?}");
            assert!(grow.bytes_allocated >= 4096, "expected ≥4096 B, got {grow:?}");
            let freed = after.since(&mid);
            assert!(freed.frees >= 1, "expected ≥1 free, got {freed:?}");
            assert!(freed.bytes_freed >= 4096, "expected ≥4096 B freed, got {freed:?}");
        });
    }

    #[test]
    fn disabled_counting_is_inert() {
        let _g = test_lock();
        let was = enabled();
        set_enabled(false);
        let before = thread_snapshot();
        let v: Vec<u8> = std::hint::black_box(Vec::with_capacity(4096));
        drop(v);
        let after = thread_snapshot();
        set_enabled(was);
        assert_eq!(before, after, "disabled allocator must not count");
    }

    #[test]
    fn high_water_tracks_live_peak() {
        with_counting(|| {
            reset_high_water();
            let base = thread_live_bytes();
            let v: Vec<u8> = std::hint::black_box(vec![0u8; 1 << 16]);
            let peak_live = thread_live_bytes();
            drop(v);
            assert!(peak_live >= base + (1 << 16));
            assert!(thread_high_water_bytes() >= peak_live);
            // After the drop, live recedes but high-water holds.
            assert!(thread_live_bytes() < peak_live);
        });
    }

    #[test]
    fn realloc_counts_both_sides() {
        with_counting(|| {
            let before = thread_snapshot();
            let mut v: Vec<u8> = Vec::with_capacity(64);
            v.resize(64, 0);
            // Force growth reallocation(s).
            for i in 0..4096u32 {
                v.push(i as u8);
            }
            std::hint::black_box(&v);
            drop(v);
            let d = thread_snapshot().since(&before);
            assert!(d.allocs >= 2, "growth must re-allocate: {d:?}");
            assert_eq!(
                d.bytes_allocated - d.bytes_freed,
                0,
                "everything dropped ⇒ traffic balances: {d:?}"
            );
        });
    }

    #[test]
    fn stats_merge_is_field_wise_sum() {
        let mut a = AllocStats {
            bytes_allocated: 10,
            allocs: 2,
            bytes_freed: 4,
            frees: 1,
        };
        let b = AllocStats {
            bytes_allocated: 7,
            allocs: 1,
            bytes_freed: 6,
            frees: 3,
        };
        a.merge(&b);
        assert_eq!(
            a,
            AllocStats {
                bytes_allocated: 17,
                allocs: 3,
                bytes_freed: 10,
                frees: 4
            }
        );
        assert!(!a.is_zero());
        assert!(AllocStats::default().is_zero());
    }

    #[test]
    fn process_totals_are_monotonic_while_counting() {
        with_counting(|| {
            let before = process_totals();
            let v: Vec<u8> = std::hint::black_box(Vec::with_capacity(512));
            drop(v);
            let after = process_totals();
            assert!(after.bytes_allocated >= before.bytes_allocated + 512);
            assert!(after.allocs > before.allocs);
            assert!(after.frees > before.frees);
        });
    }
}
