//! Environment-driven configuration.
//!
//! Two variables control the layer, both read once per process:
//!
//! * `IOT_OBS` — verbosity. `0`/unset: disabled (near-zero overhead);
//!   `1`: metrics recorded and run reports written; `2`: additionally
//!   print [`progress!`](crate::progress) lines to stderr.
//! * `IOT_OBS_OUT` — run-report path (default `results/obs_run.json`).

use std::sync::OnceLock;

/// Default run-report path when `IOT_OBS_OUT` is unset.
pub const DEFAULT_OUT: &str = "results/obs_run.json";

/// Resolved configuration.
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Verbosity level (0 = off, 1 = metrics, 2 = metrics + progress).
    pub verbosity: u8,
    /// Run-report output path.
    pub out_path: String,
}

impl ObsConfig {
    /// Reads the configuration from the environment.
    pub fn from_env() -> Self {
        let verbosity = std::env::var("IOT_OBS")
            .ok()
            .and_then(|v| v.trim().parse::<u8>().ok())
            .unwrap_or(0);
        let out_path =
            std::env::var("IOT_OBS_OUT").unwrap_or_else(|_| DEFAULT_OUT.to_string());
        ObsConfig { verbosity, out_path }
    }
}

/// The process-wide configuration, read from the environment on first
/// use and cached for the lifetime of the process.
pub fn global() -> &'static ObsConfig {
    static CONFIG: OnceLock<ObsConfig> = OnceLock::new();
    CONFIG.get_or_init(ObsConfig::from_env)
}

/// Whether metric recording is enabled (`IOT_OBS >= 1`).
pub fn enabled() -> bool {
    global().verbosity >= 1
}

/// Whether progress logging is enabled (`IOT_OBS >= 2`).
pub fn verbose() -> bool {
    global().verbosity >= 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_env_defaults_are_quiet() {
        // The test environment does not set IOT_OBS* (verify.sh only sets
        // them for specific child processes), so defaults apply.
        let c = ObsConfig::from_env();
        if std::env::var("IOT_OBS").is_err() {
            assert_eq!(c.verbosity, 0);
        }
        if std::env::var("IOT_OBS_OUT").is_err() {
            assert_eq!(c.out_path, DEFAULT_OUT);
        }
    }
}
