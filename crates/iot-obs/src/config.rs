//! Environment-driven configuration.
//!
//! Four variables control the layer. They are read **once per process**
//! into a single [`OnceLock`]-cached [`ObsConfig`] — every call-site
//! gate (`enabled()`, `verbose()`, report paths, the serve address, the
//! event-ring capacity) resolves through that one cached struct, so a
//! mid-run environment mutation can never produce a half-enabled run
//! where some shards record and others don't.
//!
//! * `IOT_OBS` — verbosity. `0`/unset: disabled (near-zero overhead);
//!   `1`: metrics recorded and run reports written; `2`: additionally
//!   print [`progress!`](crate::progress) lines to stderr.
//! * `IOT_OBS_OUT` — run-report path (default `results/obs_run.json`).
//! * `IOT_OBS_SERVE` — bind address (e.g. `127.0.0.1:9464`) for the live
//!   HTTP telemetry endpoint (see [`crate::serve`]). Unset: no server.
//! * `IOT_OBS_EVENTS` — per-shard event-ring capacity for the flight
//!   recorder (default [`DEFAULT_EVENT_CAPACITY`]; `0` disables event
//!   recording while keeping aggregate metrics).
//! * `IOT_OBS_ALLOC` — `1` turns on the instrumented global allocator
//!   (see [`crate::alloc`]); independent of `IOT_OBS` so memory can be
//!   profiled without span recording and vice versa. The allocator
//!   itself never reads the environment (that would allocate); this
//!   module flips its flag when the config is first resolved.

use crate::events::DEFAULT_EVENT_CAPACITY;
use std::sync::OnceLock;

/// Default run-report path when `IOT_OBS_OUT` is unset.
pub const DEFAULT_OUT: &str = "results/obs_run.json";

/// Resolved configuration.
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Verbosity level (0 = off, 1 = metrics, 2 = metrics + progress).
    pub verbosity: u8,
    /// Run-report output path.
    pub out_path: String,
    /// Live telemetry endpoint bind address (`IOT_OBS_SERVE`), if any.
    pub serve_addr: Option<String>,
    /// Flight-recorder ring capacity per shard (`IOT_OBS_EVENTS`).
    pub event_capacity: usize,
    /// Instrumented-allocator gate (`IOT_OBS_ALLOC`).
    pub alloc: bool,
}

impl ObsConfig {
    /// Reads the configuration from the environment.
    pub fn from_env() -> Self {
        let verbosity = std::env::var("IOT_OBS")
            .ok()
            .and_then(|v| v.trim().parse::<u8>().ok())
            .unwrap_or(0);
        let out_path =
            std::env::var("IOT_OBS_OUT").unwrap_or_else(|_| DEFAULT_OUT.to_string());
        let serve_addr = std::env::var("IOT_OBS_SERVE")
            .ok()
            .map(|v| v.trim().to_string())
            .filter(|v| !v.is_empty());
        let event_capacity = std::env::var("IOT_OBS_EVENTS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(DEFAULT_EVENT_CAPACITY);
        let alloc = std::env::var("IOT_OBS_ALLOC")
            .ok()
            .map(|v| {
                let v = v.trim();
                !v.is_empty() && v != "0"
            })
            .unwrap_or(false);
        ObsConfig {
            verbosity,
            out_path,
            serve_addr,
            event_capacity,
            alloc,
        }
    }
}

/// The process-wide configuration, read from the environment on first
/// use and cached for the lifetime of the process.
pub fn global() -> &'static ObsConfig {
    static CONFIG: OnceLock<ObsConfig> = OnceLock::new();
    CONFIG.get_or_init(|| {
        let cfg = ObsConfig::from_env();
        // The allocator cannot read IOT_OBS_ALLOC itself (env access
        // allocates, which would recurse); arm it here, once, when the
        // config first resolves. Benches may still override later via
        // `alloc::set_enabled`.
        if cfg.alloc {
            crate::alloc::set_enabled(true);
        }
        cfg
    })
}

/// Whether metric recording is enabled (`IOT_OBS >= 1`).
pub fn enabled() -> bool {
    global().verbosity >= 1
}

/// Whether progress logging is enabled (`IOT_OBS >= 2`).
pub fn verbose() -> bool {
    global().verbosity >= 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_env_defaults_are_quiet() {
        // The test environment does not set IOT_OBS* (verify.sh only sets
        // them for specific child processes), so defaults apply.
        let c = ObsConfig::from_env();
        if std::env::var("IOT_OBS").is_err() {
            assert_eq!(c.verbosity, 0);
        }
        if std::env::var("IOT_OBS_OUT").is_err() {
            assert_eq!(c.out_path, DEFAULT_OUT);
        }
        if std::env::var("IOT_OBS_SERVE").is_err() {
            assert_eq!(c.serve_addr, None);
        }
        if std::env::var("IOT_OBS_EVENTS").is_err() {
            assert_eq!(c.event_capacity, DEFAULT_EVENT_CAPACITY);
        }
        if std::env::var("IOT_OBS_ALLOC").is_err() {
            assert!(!c.alloc);
        }
    }

    #[test]
    fn global_is_cached_once() {
        // Two reads must return the very same allocation — the OnceLock
        // guarantee that call sites can never observe two configs.
        let a = global() as *const ObsConfig;
        let b = global() as *const ObsConfig;
        assert_eq!(a, b);
    }
}
