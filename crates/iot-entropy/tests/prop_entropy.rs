//! Property-based tests for entropy invariants.

use iot_entropy::classify::{EncryptionClass, Thresholds};
use iot_entropy::entropy::{mean_packet_entropy, normalized_entropy, EntropyStats};
use proptest::prelude::*;

proptest! {
    /// Entropy is always within [0, 1].
    #[test]
    fn entropy_bounded(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let h = normalized_entropy(&data);
        prop_assert!((0.0..=1.0).contains(&h), "H = {h}");
    }

    /// Entropy is permutation-invariant (it depends only on the byte
    /// histogram).
    #[test]
    fn entropy_permutation_invariant(mut data in proptest::collection::vec(any::<u8>(), 1..2048)) {
        let h1 = normalized_entropy(&data);
        data.sort_unstable();
        let h2 = normalized_entropy(&data);
        prop_assert!((h1 - h2).abs() < 1e-12);
    }

    /// Duplicating the data does not change its entropy.
    #[test]
    fn entropy_scale_invariant(data in proptest::collection::vec(any::<u8>(), 1..1024)) {
        let h1 = normalized_entropy(&data);
        let doubled: Vec<u8> = data.iter().chain(data.iter()).copied().collect();
        let h2 = normalized_entropy(&doubled);
        prop_assert!((h1 - h2).abs() < 1e-12);
    }

    /// A constant sequence always has zero entropy; adding one distinct
    /// byte makes it strictly positive.
    #[test]
    fn constant_vs_near_constant(byte in any::<u8>(), len in 2usize..512) {
        let constant = vec![byte; len];
        prop_assert_eq!(normalized_entropy(&constant), 0.0);
        let mut near = constant;
        near[0] = byte.wrapping_add(1);
        prop_assert!(normalized_entropy(&near) > 0.0);
    }

    /// Entropy never exceeds log2(n)/8 for n-byte input.
    #[test]
    fn finite_sample_bound(data in proptest::collection::vec(any::<u8>(), 1..300)) {
        let h = normalized_entropy(&data);
        let bound = (data.len() as f64).log2() / 8.0;
        prop_assert!(h <= bound + 1e-9, "H={h} bound={bound}");
    }

    /// The classifier is total and consistent with its thresholds.
    #[test]
    fn classifier_consistent(h in 0.0f64..=1.0, low in 0.0f64..=0.5, high in 0.5f64..=1.0) {
        let t = Thresholds::new(low, high);
        let c = t.classify_value(h);
        match c {
            EncryptionClass::LikelyEncrypted => prop_assert!(h > high),
            EncryptionClass::LikelyUnencrypted => prop_assert!(h < low),
            EncryptionClass::Unknown => prop_assert!(h >= low && h <= high),
        }
    }

    /// Mean packet entropy lies between the min and max per-packet entropy.
    #[test]
    fn mean_within_extremes(
        chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..256), 1..12),
    ) {
        let values: Vec<f64> = chunks.iter().map(|c| normalized_entropy(c)).collect();
        let stats = EntropyStats::from_values(&values);
        let mean = mean_packet_entropy(chunks.iter().map(|c| c.as_slice()));
        prop_assert!(mean >= stats.min - 1e-12 && mean <= stats.max + 1e-12);
        prop_assert!((mean - stats.mean).abs() < 1e-12);
    }
}
