//! Property tests for entropy invariants, driven by the in-tree
//! deterministic PRNG: each property runs a fixed-seed loop of random
//! cases instead of a proptest strategy, so failures reproduce exactly.

use iot_core::rng::StdRng;
use iot_entropy::classify::{EncryptionClass, Thresholds};
use iot_entropy::entropy::{mean_packet_entropy, normalized_entropy, EntropyStats};

const CASES: usize = 64;

fn random_bytes(rng: &mut StdRng, len_range: std::ops::Range<usize>) -> Vec<u8> {
    let len = rng.gen_range(len_range);
    let mut v = vec![0u8; len];
    rng.fill(&mut v);
    v
}

/// Entropy is always within [0, 1].
#[test]
fn entropy_bounded() {
    let mut rng = StdRng::seed_from_u64(0xE1);
    for _ in 0..CASES {
        let data = random_bytes(&mut rng, 0..4096);
        let h = normalized_entropy(&data);
        assert!((0.0..=1.0).contains(&h), "H = {h}");
    }
}

/// Entropy is permutation-invariant (it depends only on the byte
/// histogram).
#[test]
fn entropy_permutation_invariant() {
    let mut rng = StdRng::seed_from_u64(0xE2);
    for _ in 0..CASES {
        let mut data = random_bytes(&mut rng, 1..2048);
        let h1 = normalized_entropy(&data);
        data.sort_unstable();
        let h2 = normalized_entropy(&data);
        assert!((h1 - h2).abs() < 1e-12);
    }
}

/// Duplicating the data does not change its entropy.
#[test]
fn entropy_scale_invariant() {
    let mut rng = StdRng::seed_from_u64(0xE3);
    for _ in 0..CASES {
        let data = random_bytes(&mut rng, 1..1024);
        let h1 = normalized_entropy(&data);
        let doubled: Vec<u8> = data.iter().chain(data.iter()).copied().collect();
        let h2 = normalized_entropy(&doubled);
        assert!((h1 - h2).abs() < 1e-12);
    }
}

/// A constant sequence always has zero entropy; adding one distinct
/// byte makes it strictly positive.
#[test]
fn constant_vs_near_constant() {
    let mut rng = StdRng::seed_from_u64(0xE4);
    for _ in 0..CASES {
        let byte: u8 = rng.gen();
        let len = rng.gen_range(2usize..512);
        let constant = vec![byte; len];
        assert_eq!(normalized_entropy(&constant), 0.0);
        let mut near = constant;
        near[0] = byte.wrapping_add(1);
        assert!(normalized_entropy(&near) > 0.0);
    }
}

/// Entropy never exceeds log2(n)/8 for n-byte input.
#[test]
fn finite_sample_bound() {
    let mut rng = StdRng::seed_from_u64(0xE5);
    for _ in 0..CASES {
        let data = random_bytes(&mut rng, 1..300);
        let h = normalized_entropy(&data);
        let bound = (data.len() as f64).log2() / 8.0;
        assert!(h <= bound + 1e-9, "H={h} bound={bound}");
    }
}

/// The classifier is total and consistent with its thresholds.
#[test]
fn classifier_consistent() {
    let mut rng = StdRng::seed_from_u64(0xE6);
    for _ in 0..CASES {
        let h = rng.gen_range(0.0f64..=1.0);
        let low = rng.gen_range(0.0f64..=0.5);
        let high = rng.gen_range(0.5f64..=1.0);
        let t = Thresholds::new(low, high);
        match t.classify_value(h) {
            EncryptionClass::LikelyEncrypted => assert!(h > high),
            EncryptionClass::LikelyUnencrypted => assert!(h < low),
            EncryptionClass::Unknown => assert!(h >= low && h <= high),
        }
    }
}

/// Mean packet entropy lies between the min and max per-packet entropy.
#[test]
fn mean_within_extremes() {
    let mut rng = StdRng::seed_from_u64(0xE7);
    for _ in 0..CASES {
        let n_chunks = rng.gen_range(1usize..12);
        let chunks: Vec<Vec<u8>> = (0..n_chunks)
            .map(|_| random_bytes(&mut rng, 1..256))
            .collect();
        let values: Vec<f64> = chunks.iter().map(|c| normalized_entropy(c)).collect();
        let stats = EntropyStats::from_values(&values);
        let mean = mean_packet_entropy(chunks.iter().map(|c| c.as_slice()));
        assert!(mean >= stats.min - 1e-12 && mean <= stats.max + 1e-12);
        assert!((mean - stats.mean).abs() < 1e-12);
    }
}
