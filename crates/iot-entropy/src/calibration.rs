//! The §5.1 calibration experiment.
//!
//! The paper calibrated its thresholds by measuring the entropy of known
//! content: IMC-2019 web pages sent in plaintext, the same pages encrypted
//! under 14 TLS cipher suites, the same pages under python's
//! `cryptography/fernet`, and phone-recorded video. This module re-runs the
//! experiment against the calibrated generators and reports the same
//! statistics, so the table in EXPERIMENTS.md can be regenerated and
//! compared against the paper's numbers.

use crate::entropy::{mean_packet_entropy, EntropyStats};
use crate::generators::{self, TextStyle};

/// Number of cipher-suite variants the paper exercised.
pub const CIPHER_SUITE_RUNS: usize = 14;

/// Packet size used as the per-measurement unit.
pub const PACKET_BYTES: usize = 160;

/// Result of one calibration family.
#[derive(Debug, Clone)]
pub struct FamilyCalibration {
    /// Family label, e.g. `"tls"`.
    pub family: &'static str,
    /// Entropy statistics across runs.
    pub stats: EntropyStats,
    /// The paper's reported mean for comparison.
    pub paper_mean: f64,
}

/// Complete calibration report.
#[derive(Debug, Clone)]
pub struct CalibrationReport {
    /// One entry per payload family.
    pub families: Vec<FamilyCalibration>,
}

/// Runs the calibration experiment with `runs` measurements per family
/// (the paper used 14 cipher suites; we mirror that for every family).
pub fn run(seed: u64, runs: usize) -> CalibrationReport {
    let bytes_per_run = PACKET_BYTES * 50;
    let measure = |data: &[u8]| mean_packet_entropy(data.chunks(PACKET_BYTES));

    let mut tls = Vec::with_capacity(runs);
    let mut fernet = Vec::with_capacity(runs);
    let mut plain_http = Vec::with_capacity(runs);
    let mut web = Vec::with_capacity(runs);
    let mut media = Vec::with_capacity(runs);
    for i in 0..runs {
        let mut r = generators::rng(seed.wrapping_add(i as u64));
        tls.push(measure(&generators::ciphertext(&mut r, bytes_per_run)));
        fernet.push(measure(&generators::fernet_like(&mut r, bytes_per_run)));
        plain_http.push(measure(&generators::text_like(
            &mut r,
            bytes_per_run,
            TextStyle::Telemetry,
        )));
        web.push(measure(&generators::text_like(
            &mut r,
            bytes_per_run,
            TextStyle::WebPage,
        )));
        // Media entropy is measured at media-sized (1 KB) units.
        media.push(mean_packet_entropy(
            generators::media_like(&mut r, 1000 * 20).chunks(1000),
        ));
    }

    CalibrationReport {
        families: vec![
            FamilyCalibration {
                family: "tls",
                stats: EntropyStats::from_values(&tls),
                paper_mean: 0.85,
            },
            FamilyCalibration {
                family: "fernet",
                stats: EntropyStats::from_values(&fernet),
                paper_mean: 0.73,
            },
            FamilyCalibration {
                family: "plaintext-telemetry",
                stats: EntropyStats::from_values(&plain_http),
                paper_mean: 0.25,
            },
            FamilyCalibration {
                family: "plaintext-webpage",
                stats: EntropyStats::from_values(&web),
                paper_mean: 0.55,
            },
            FamilyCalibration {
                family: "media",
                stats: EntropyStats::from_values(&media),
                paper_mean: 0.873,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{EncryptionClass, Thresholds};

    #[test]
    fn calibration_reproduces_paper_bands() {
        let report = run(0xCA11B, CIPHER_SUITE_RUNS);
        for fam in &report.families {
            let err = (fam.stats.mean - fam.paper_mean).abs();
            assert!(
                err < 0.08,
                "{}: measured {:.3} vs paper {:.3}",
                fam.family,
                fam.stats.mean,
                fam.paper_mean
            );
        }
    }

    #[test]
    fn thresholds_separate_families_as_in_paper() {
        let report = run(7, CIPHER_SUITE_RUNS);
        let t = Thresholds::default();
        let by_name = |n: &str| {
            report
                .families
                .iter()
                .find(|f| f.family == n)
                .unwrap()
                .stats
                .mean
        };
        assert_eq!(t.classify_value(by_name("tls")), EncryptionClass::LikelyEncrypted);
        assert_eq!(
            t.classify_value(by_name("plaintext-telemetry")),
            EncryptionClass::LikelyUnencrypted
        );
        // Fernet and webpage text both land in the undetermined gap — the
        // paper's argument for the conservative "unknown" class.
        assert_eq!(t.classify_value(by_name("fernet")), EncryptionClass::Unknown);
        assert_eq!(
            t.classify_value(by_name("plaintext-webpage")),
            EncryptionClass::Unknown
        );
        // Media defeats the entropy test (classified encrypted although it
        // is not) — motivating the traffic-pattern exclusion in §5.1.
        assert_eq!(t.classify_value(by_name("media")), EncryptionClass::LikelyEncrypted);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = run(1, 4);
        let b = run(1, 4);
        for (x, y) in a.families.iter().zip(b.families.iter()) {
            assert_eq!(x.stats.mean, y.stats.mean);
        }
    }
}
