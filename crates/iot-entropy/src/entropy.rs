//! Normalized Shannon byte entropy.

/// Computes the normalized Shannon entropy of a byte sequence.
///
/// The result is `H / 8 ∈ [0, 1]`: 0 for a constant sequence, approaching 1
/// for long uniform-random sequences. Finite samples cap the achievable
/// value at `log2(n)/8` for `n < 256` distinct bytes, which is why real
/// ciphertext measured per-packet (a few hundred bytes) lands near 0.85
/// rather than 1.0 — exactly the band the paper reports for TLS payloads.
///
/// Returns 0.0 for an empty slice.
pub fn normalized_entropy(data: &[u8]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let mut counts = [0u64; 256];
    for &b in data {
        counts[usize::from(b)] += 1;
    }
    let n = data.len() as f64;
    let mut h = 0.0;
    for &c in counts.iter().filter(|&&c| c > 0) {
        let p = c as f64 / n;
        h -= p * p.log2();
    }
    h / 8.0
}

/// Mean per-packet entropy across a flow's payloads, the unit the paper's
/// classifier uses (empty payloads are skipped).
pub fn mean_packet_entropy<'a>(payloads: impl IntoIterator<Item = &'a [u8]>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for p in payloads {
        if !p.is_empty() {
            sum += normalized_entropy(p);
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Summary statistics (mean, population σ, min, max) over a set of entropy
/// measurements, as reported in the paper's §5.1 calibration tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EntropyStats {
    /// Mean entropy.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Minimum observed value.
    pub min: f64,
    /// Maximum observed value.
    pub max: f64,
}

impl EntropyStats {
    /// Computes statistics over a non-empty set of measurements.
    ///
    /// # Panics
    /// Panics if `values` is empty.
    pub fn from_values(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "EntropyStats over empty set");
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        EntropyStats {
            mean,
            stddev: var.sqrt(),
            min: values.iter().cloned().fold(f64::INFINITY, f64::min),
            max: values.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_sequence_is_zero() {
        assert_eq!(normalized_entropy(&[0x41; 1000]), 0.0);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(normalized_entropy(&[]), 0.0);
    }

    #[test]
    fn all_256_values_equally_is_one() {
        let data: Vec<u8> = (0..=255).collect();
        assert!((normalized_entropy(&data) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_symbols_is_one_eighth() {
        let data: Vec<u8> = (0..100).map(|i| if i % 2 == 0 { 0 } else { 1 }).collect();
        assert!((normalized_entropy(&data) - 1.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn finite_sample_caps_entropy() {
        // 128 distinct bytes once each: H = log2(128)/8 = 0.875.
        let data: Vec<u8> = (0..128).collect();
        assert!((normalized_entropy(&data) - 0.875).abs() < 1e-12);
    }

    #[test]
    fn mean_packet_entropy_skips_empty() {
        let a = [0u8; 16];
        let b: Vec<u8> = (0..=255).collect();
        let payloads: Vec<&[u8]> = vec![&a, &[], &b];
        let m = mean_packet_entropy(payloads.into_iter());
        assert!((m - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mean_of_nothing_is_zero() {
        assert_eq!(mean_packet_entropy(std::iter::empty()), 0.0);
    }

    #[test]
    fn stats_computed() {
        let s = EntropyStats::from_values(&[0.2, 0.4, 0.6]);
        assert!((s.mean - 0.4).abs() < 1e-12);
        assert!((s.min - 0.2).abs() < 1e-12);
        assert!((s.max - 0.6).abs() < 1e-12);
        assert!(s.stddev > 0.0);
    }

    #[test]
    #[should_panic(expected = "empty set")]
    fn stats_empty_panics() {
        EntropyStats::from_values(&[]);
    }
}
