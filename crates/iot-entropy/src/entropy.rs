//! Normalized Shannon byte entropy.
//!
//! Two implementations coexist:
//!
//! - [`normalized_entropy`]: the naive per-byte histogram + per-class
//!   `log2` reference. Simple, allocation-free, and the semantic ground
//!   truth.
//! - [`EntropyScratch`]: the hot-path version. Counts bytes in u64-wide
//!   chunks into four unrolled lane tables (no same-byte increment
//!   dependency chain, still std-only — no intrinsics), and replaces the
//!   per-symbol-class `p·log2(p)` calls with a per-length cached term
//!   table. The term table entries are computed with *exactly* the same
//!   floating-point expression and the histogram is folded in exactly
//!   the same index order, so the result is bit-identical (0 ulps) to
//!   the reference — a property test in this crate pins that.

/// Computes the normalized Shannon entropy of a byte sequence.
///
/// The result is `H / 8 ∈ [0, 1]`: 0 for a constant sequence, approaching 1
/// for long uniform-random sequences. Finite samples cap the achievable
/// value at `log2(n)/8` for `n < 256` distinct bytes, which is why real
/// ciphertext measured per-packet (a few hundred bytes) lands near 0.85
/// rather than 1.0 — exactly the band the paper reports for TLS payloads.
///
/// Returns 0.0 for an empty slice.
pub fn normalized_entropy(data: &[u8]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let mut counts = [0u64; 256];
    for &b in data {
        counts[usize::from(b)] += 1;
    }
    let n = data.len() as f64;
    let mut h = 0.0;
    for &c in counts.iter().filter(|&&c| c > 0) {
        let p = c as f64 / n;
        h -= p * p.log2();
    }
    h / 8.0
}

/// Mean per-packet entropy across a flow's payloads, the unit the paper's
/// classifier uses (empty payloads are skipped).
pub fn mean_packet_entropy<'a>(payloads: impl IntoIterator<Item = &'a [u8]>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for p in payloads {
        if !p.is_empty() {
            sum += normalized_entropy(p);
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Payload lengths up to this get a cached `p·log2(p)` term table; longer
/// inputs fall back to the reference implementation (they are rare — the
/// pipeline measures 160-byte pseudo-packets — and the fallback is
/// bit-identical by definition).
const MAX_CACHED_N: usize = 8192;

/// Reusable state for the chunked entropy fast path: four byte-count lane
/// tables plus per-length term tables. One scratch per worker/analysis —
/// it is deliberately not `Sync`, mirroring the shard-local design of the
/// rest of the pipeline.
pub struct EntropyScratch {
    /// Four unrolled count lanes; folded (and re-zeroed) after each call.
    lanes: Box<[[u32; 256]; 4]>,
    /// `terms[n][c] = (c/n)·log2(c/n)` for `1 ≤ c ≤ n`, built lazily per
    /// distinct payload length `n`; an empty slice means "not built yet".
    terms: Vec<Box<[f64]>>,
}

impl Default for EntropyScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl EntropyScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        EntropyScratch {
            lanes: Box::new([[0u32; 256]; 4]),
            terms: Vec::new(),
        }
    }

    fn term_table(terms: &mut Vec<Box<[f64]>>, n: usize) -> &[f64] {
        if terms.len() <= n {
            terms.resize_with(n + 1, || Box::from([]));
        }
        if terms[n].is_empty() {
            let nf = n as f64;
            let table: Vec<f64> = (0..=n)
                .map(|c| {
                    if c == 0 {
                        0.0
                    } else {
                        // Exactly the reference expression, term by term.
                        let p = c as f64 / nf;
                        p * p.log2()
                    }
                })
                .collect();
            terms[n] = table.into_boxed_slice();
        }
        &terms[n]
    }

    /// Chunked-counting, table-driven [`normalized_entropy`]. Bit-identical
    /// to the reference for every input.
    pub fn normalized_entropy(&mut self, data: &[u8]) -> f64 {
        let n = data.len();
        if n == 0 {
            return 0.0;
        }
        if n > MAX_CACHED_N {
            return normalized_entropy(data);
        }
        let EntropyScratch { lanes, terms } = self;
        let lanes = &mut **lanes;
        let mut chunks = data.chunks_exact(8);
        for c in &mut chunks {
            // One u64 load feeds eight independent lane increments; the
            // four lanes break the dependency chain a single count table
            // would have on runs of equal bytes.
            let w = u64::from_le_bytes(c.try_into().unwrap());
            lanes[0][(w & 0xff) as usize] += 1;
            lanes[1][((w >> 8) & 0xff) as usize] += 1;
            lanes[2][((w >> 16) & 0xff) as usize] += 1;
            lanes[3][((w >> 24) & 0xff) as usize] += 1;
            lanes[0][((w >> 32) & 0xff) as usize] += 1;
            lanes[1][((w >> 40) & 0xff) as usize] += 1;
            lanes[2][((w >> 48) & 0xff) as usize] += 1;
            lanes[3][((w >> 56) & 0xff) as usize] += 1;
        }
        for (j, &b) in chunks.remainder().iter().enumerate() {
            lanes[j & 3][usize::from(b)] += 1;
        }
        let table = Self::term_table(terms, n);
        let mut h = 0.0;
        for i in 0..256 {
            // Fold the lanes and re-zero them in the same pass, in the
            // same index order the reference iterates its histogram.
            let c = lanes[0][i] + lanes[1][i] + lanes[2][i] + lanes[3][i];
            lanes[0][i] = 0;
            lanes[1][i] = 0;
            lanes[2][i] = 0;
            lanes[3][i] = 0;
            if c > 0 {
                h -= table[c as usize];
            }
        }
        h / 8.0
    }

    /// Scratch-backed [`mean_packet_entropy`]; same skip-empty semantics,
    /// bit-identical result.
    pub fn mean_packet_entropy<'a>(
        &mut self,
        payloads: impl IntoIterator<Item = &'a [u8]>,
    ) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for p in payloads {
            if !p.is_empty() {
                sum += self.normalized_entropy(p);
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

/// Summary statistics (mean, population σ, min, max) over a set of entropy
/// measurements, as reported in the paper's §5.1 calibration tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EntropyStats {
    /// Mean entropy.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Minimum observed value.
    pub min: f64,
    /// Maximum observed value.
    pub max: f64,
}

impl EntropyStats {
    /// Computes statistics over a non-empty set of measurements.
    ///
    /// # Panics
    /// Panics if `values` is empty.
    pub fn from_values(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "EntropyStats over empty set");
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        EntropyStats {
            mean,
            stddev: var.sqrt(),
            min: values.iter().cloned().fold(f64::INFINITY, f64::min),
            max: values.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_sequence_is_zero() {
        assert_eq!(normalized_entropy(&[0x41; 1000]), 0.0);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(normalized_entropy(&[]), 0.0);
    }

    #[test]
    fn all_256_values_equally_is_one() {
        let data: Vec<u8> = (0..=255).collect();
        assert!((normalized_entropy(&data) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_symbols_is_one_eighth() {
        let data: Vec<u8> = (0..100).map(|i| if i % 2 == 0 { 0 } else { 1 }).collect();
        assert!((normalized_entropy(&data) - 1.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn finite_sample_caps_entropy() {
        // 128 distinct bytes once each: H = log2(128)/8 = 0.875.
        let data: Vec<u8> = (0..128).collect();
        assert!((normalized_entropy(&data) - 0.875).abs() < 1e-12);
    }

    #[test]
    fn mean_packet_entropy_skips_empty() {
        let a = [0u8; 16];
        let b: Vec<u8> = (0..=255).collect();
        let payloads: Vec<&[u8]> = vec![&a, &[], &b];
        let m = mean_packet_entropy(payloads.into_iter());
        assert!((m - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mean_of_nothing_is_zero() {
        assert_eq!(mean_packet_entropy(std::iter::empty()), 0.0);
    }

    #[test]
    fn stats_computed() {
        let s = EntropyStats::from_values(&[0.2, 0.4, 0.6]);
        assert!((s.mean - 0.4).abs() < 1e-12);
        assert!((s.min - 0.2).abs() < 1e-12);
        assert!((s.max - 0.6).abs() < 1e-12);
        assert!(s.stddev > 0.0);
    }

    #[test]
    #[should_panic(expected = "empty set")]
    fn stats_empty_panics() {
        EntropyStats::from_values(&[]);
    }

    #[test]
    fn scratch_matches_reference_on_fixed_edges() {
        let mut s = EntropyScratch::new();
        let uniform: Vec<u8> = (0..=255).collect();
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![0x00],
            vec![0xff],
            vec![0x41; 7],      // odd length, constant
            vec![0x41; 1000],
            uniform,
            (0..128).collect(), // finite-sample cap
            b"GET / HTTP/1.1\r\nHost: x\r\n".to_vec(),
        ];
        for data in &cases {
            let naive = normalized_entropy(data);
            let fast = s.normalized_entropy(data);
            assert_eq!(
                naive.to_bits(),
                fast.to_bits(),
                "len {}: {naive} vs {fast}",
                data.len()
            );
        }
    }

    /// Property test (tentpole contract): the chunked/table fast path is
    /// 0 ulps from the naive reference across ≥64 seeded random cases,
    /// including empty, 1-byte, odd-length, and larger-than-cache inputs.
    #[test]
    fn scratch_matches_reference_bit_for_bit_seeded() {
        let mut rng = iot_core::rng::StdRng::seed_from_u64(0x5EED_E17E0);
        let mut s = EntropyScratch::new();
        for case in 0..96u32 {
            let len = match case % 8 {
                0 => 0,
                1 => 1,
                2 => usize::from(rng.gen::<u8>()) | 1, // odd
                3 => 160,                              // the pipeline's chunk size
                4 => MAX_CACHED_N + 1 + usize::from(rng.gen::<u8>()), // fallback path
                _ => rng.gen_range(2usize..4096),
            };
            let mut data = vec![0u8; len];
            match case % 3 {
                0 => rng.fill(&mut data),                    // uniform-random
                1 => data.fill(rng.gen::<u8>()),             // constant
                _ => {
                    // Low-cardinality text-like distribution.
                    for b in &mut data {
                        *b = b'a' + (rng.gen::<u8>() % 7);
                    }
                }
            }
            let naive = normalized_entropy(&data);
            let fast = s.normalized_entropy(&data);
            assert_eq!(
                naive.to_bits(),
                fast.to_bits(),
                "case {case} len {len}: {naive} vs {fast}"
            );
            // And the flow-level mean over 160-byte pseudo-packets.
            let naive_mean = mean_packet_entropy(data.chunks(160));
            let fast_mean = s.mean_packet_entropy(data.chunks(160));
            assert_eq!(naive_mean.to_bits(), fast_mean.to_bits(), "case {case} mean");
        }
    }
}
