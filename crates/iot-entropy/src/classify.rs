//! The entropy-threshold encryption classifier (§5.1).

use crate::entropy::mean_packet_entropy;

/// Classification outcome for a flow's payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EncryptionClass {
    /// Mean per-packet entropy above the upper threshold.
    LikelyEncrypted,
    /// Mean per-packet entropy below the lower threshold.
    LikelyUnencrypted,
    /// Between the thresholds — undetermined, the paper's "?" class.
    Unknown,
}

impl EncryptionClass {
    /// Symbol used in the paper's tables: `✗` unencrypted, `✓` encrypted,
    /// `?` unknown.
    pub fn symbol(self) -> &'static str {
        match self {
            EncryptionClass::LikelyEncrypted => "enc",
            EncryptionClass::LikelyUnencrypted => "unenc",
            EncryptionClass::Unknown => "?",
        }
    }
}

/// Classifier thresholds. The defaults are the paper's conservative
/// choices; `iot-bench --bench ablation` sweeps alternatives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thresholds {
    /// Entropy below this ⇒ likely unencrypted (paper: 0.4).
    pub unencrypted_below: f64,
    /// Entropy above this ⇒ likely encrypted (paper: 0.8).
    pub encrypted_above: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            unencrypted_below: 0.4,
            encrypted_above: 0.8,
        }
    }
}

impl Thresholds {
    /// Creates custom thresholds.
    ///
    /// # Panics
    /// Panics unless `0 ≤ unencrypted_below ≤ encrypted_above ≤ 1`.
    pub fn new(unencrypted_below: f64, encrypted_above: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&unencrypted_below)
                && (0.0..=1.0).contains(&encrypted_above)
                && unencrypted_below <= encrypted_above,
            "invalid thresholds {unencrypted_below}/{encrypted_above}"
        );
        Thresholds {
            unencrypted_below,
            encrypted_above,
        }
    }

    /// Classifies a single entropy value.
    pub fn classify_value(&self, h: f64) -> EncryptionClass {
        if h > self.encrypted_above {
            EncryptionClass::LikelyEncrypted
        } else if h < self.unencrypted_below {
            EncryptionClass::LikelyUnencrypted
        } else {
            EncryptionClass::Unknown
        }
    }

    /// Classifies a flow from its per-packet payloads.
    pub fn classify_payloads<'a>(
        &self,
        payloads: impl IntoIterator<Item = &'a [u8]>,
    ) -> EncryptionClass {
        self.classify_value(mean_packet_entropy(payloads))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_thresholds_match_paper() {
        let t = Thresholds::default();
        assert_eq!(t.unencrypted_below, 0.4);
        assert_eq!(t.encrypted_above, 0.8);
    }

    #[test]
    fn boundary_values_are_unknown() {
        // The paper uses strict inequalities: 0.4 ≤ H ≤ 0.8 is unknown.
        let t = Thresholds::default();
        assert_eq!(t.classify_value(0.4), EncryptionClass::Unknown);
        assert_eq!(t.classify_value(0.8), EncryptionClass::Unknown);
        assert_eq!(t.classify_value(0.6), EncryptionClass::Unknown);
        assert_eq!(t.classify_value(0.39), EncryptionClass::LikelyUnencrypted);
        assert_eq!(t.classify_value(0.81), EncryptionClass::LikelyEncrypted);
    }

    #[test]
    fn payload_classification() {
        let t = Thresholds::default();
        let random: Vec<u8> = (0..=255).cycle().take(1024).collect();
        let constant = [0x20u8; 1024];
        assert_eq!(
            t.classify_payloads([&random[..]]),
            EncryptionClass::LikelyEncrypted
        );
        assert_eq!(
            t.classify_payloads([&constant[..]]),
            EncryptionClass::LikelyUnencrypted
        );
    }

    #[test]
    #[should_panic(expected = "invalid thresholds")]
    fn inverted_thresholds_panic() {
        Thresholds::new(0.9, 0.1);
    }

    #[test]
    fn symbols() {
        assert_eq!(EncryptionClass::LikelyEncrypted.symbol(), "enc");
        assert_eq!(EncryptionClass::LikelyUnencrypted.symbol(), "unenc");
        assert_eq!(EncryptionClass::Unknown.symbol(), "?");
    }
}
