//! Seeded payload generators calibrated to the paper's §5.1 entropy bands.
//!
//! The simulator never performs real cryptography or compression — the
//! analyses only observe byte *distributions*. Each generator reproduces
//! the distribution of one payload family the paper measured:
//!
//! | Family | Paper's measurement | Generator |
//! |---|---|---|
//! | TLS ciphertext | H≈0.85 (0.80–0.87) per packet | uniform random bytes |
//! | fernet ciphertext | H≈0.73 (0.67–0.75) | base64 of random bytes |
//! | textual plaintext (telemetry) | H≈0.25 (0.12–0.39) | digit-coded sensor readings |
//! | textual plaintext (web page) | H≈0.55 (0.35–0.62) | English-like markup |
//! | media (video/audio) | H≈0.873 | random bytes + container structure |

use iot_core::rng::StdRng;

/// Creates the crate's deterministic RNG from a seed.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Uniform random bytes: stands in for TLS/AES ciphertext.
pub fn ciphertext(rng: &mut StdRng, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.gen()).collect()
}

const BASE64_ALPHABET: &[u8; 64] =
    b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Base64 text over random data: stands in for fernet-style tokens, whose
/// 64-symbol alphabet caps normalized entropy at 6/8 = 0.75.
pub fn fernet_like(rng: &mut StdRng, len: usize) -> Vec<u8> {
    (0..len)
        .map(|_| BASE64_ALPHABET[rng.gen_range(0..64)])
        .collect()
}

/// Style of textual plaintext to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TextStyle {
    /// Machine telemetry: digit-coded readings, very low entropy
    /// (the paper's H≈0.25 "textual payload" HTTP flows).
    Telemetry,
    /// Web-page-like prose and markup (the paper's IMC-website test,
    /// H≈0.55).
    WebPage,
}

const WORDS: &[&str] = &[
    "the", "device", "status", "sensor", "reading", "update", "home", "network", "smart",
    "camera", "motion", "event", "temperature", "light", "power", "state", "control", "cloud",
    "service", "request", "response", "value", "level", "mode", "active", "ready", "online",
    "system", "signal", "report", "channel", "stream", "record", "image", "audio", "video",
];

/// Textual plaintext in the requested style.
pub fn text_like(rng: &mut StdRng, len: usize, style: TextStyle) -> Vec<u8> {
    let mut out = Vec::with_capacity(len + 16);
    match style {
        TextStyle::Telemetry => {
            // Hex-coded sensor registers, zero-dominated like mostly-idle
            // hardware, e.g. "0000,00a1,0300,".
            const REST: &[u8; 16] = b"123456789abcdef,";
            while out.len() < len {
                out.push(if rng.gen_bool(0.7) {
                    b'0'
                } else {
                    REST[rng.gen_range(0..REST.len())]
                });
            }
        }
        TextStyle::WebPage => {
            while out.len() < len {
                match rng.gen_range(0..10) {
                    0 => out.extend_from_slice(b"<div class=\"c\">"),
                    1 => out.extend_from_slice(b"</div> "),
                    _ => {
                        out.extend_from_slice(WORDS[rng.gen_range(0..WORDS.len())].as_bytes());
                        out.push(b' ');
                    }
                }
            }
        }
    }
    out.truncate(len);
    out
}

/// Compressed-media-like bytes: mostly random (compressed macroblocks)
/// interleaved with container structure (start codes, padding), matching
/// the paper's H≈0.873 measurement for unencrypted phone video.
pub fn media_like(rng: &mut StdRng, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    // Streams open with a vendor-proprietary wrapper header (compressed,
    // random-looking), NOT a bare container signature: §5.1's magic-byte
    // filter intentionally misses these, leaving them to entropy analysis.
    let header = rng.gen_range(16..48);
    for _ in 0..header {
        out.push(rng.gen());
    }
    while out.len() < len {
        // A NAL-unit-like start code followed by a burst of compressed data
        // and a short zero-padding run.
        out.extend_from_slice(&[0x00, 0x00, 0x00, 0x01]);
        let burst = rng.gen_range(48..160);
        for _ in 0..burst {
            out.push(rng.gen());
        }
        let pad = rng.gen_range(8..24);
        out.extend(std::iter::repeat(0u8).take(pad));
    }
    out.truncate(len);
    out
}

/// Key-value plaintext carrying explicit fields (used for device check-ins
/// that leak identifiers); entropy falls in the telemetry band.
pub fn keyvalue_plaintext(rng: &mut StdRng, fields: &[(&str, &str)], pad_to: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(pad_to);
    for (k, v) in fields {
        out.extend_from_slice(k.as_bytes());
        out.push(b'=');
        out.extend_from_slice(v.as_bytes());
        out.push(b'&');
    }
    while out.len() < pad_to {
        out.push(if rng.gen_bool(0.3) { b'1' } else { b'0' });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entropy::{mean_packet_entropy, normalized_entropy};

    /// Mean per-packet entropy of a stream chunked into `chunk`-byte
    /// "packets", the measurement unit of §5.1.
    fn chunked_entropy(data: &[u8], chunk: usize) -> f64 {
        mean_packet_entropy(data.chunks(chunk))
    }

    #[test]
    fn ciphertext_in_tls_band() {
        let mut r = rng(1);
        // ~160-byte packets, the paper's typical encrypted payload size.
        for seed_run in 0..5 {
            let data = ciphertext(&mut r, 160 * 30);
            let h = chunked_entropy(&data, 160);
            assert!(
                (0.80..=0.88).contains(&h),
                "run {seed_run}: ciphertext entropy {h} outside TLS band"
            );
        }
    }

    #[test]
    fn fernet_in_band() {
        let mut r = rng(2);
        let data = fernet_like(&mut r, 200 * 30);
        let h = chunked_entropy(&data, 200);
        assert!((0.67..=0.76).contains(&h), "fernet entropy {h}");
    }

    #[test]
    fn telemetry_text_in_band() {
        let mut r = rng(3);
        let data = text_like(&mut r, 300 * 20, TextStyle::Telemetry);
        let h = chunked_entropy(&data, 300);
        assert!((0.10..=0.39).contains(&h), "telemetry entropy {h}");
    }

    #[test]
    fn webpage_text_in_band() {
        let mut r = rng(4);
        let data = text_like(&mut r, 400 * 20, TextStyle::WebPage);
        let h = chunked_entropy(&data, 400);
        assert!((0.35..=0.65).contains(&h), "webpage entropy {h}");
    }

    #[test]
    fn media_in_band() {
        let mut r = rng(5);
        let data = media_like(&mut r, 1000 * 20);
        let h = chunked_entropy(&data, 1000);
        assert!(
            (0.82..=0.93).contains(&h),
            "media entropy {h} must sit above the encrypted threshold, \
             reproducing the paper's caveat"
        );
    }

    #[test]
    fn generators_deterministic_for_seed() {
        let a = ciphertext(&mut rng(42), 256);
        let b = ciphertext(&mut rng(42), 256);
        assert_eq!(a, b);
        let c = text_like(&mut rng(7), 128, TextStyle::WebPage);
        let d = text_like(&mut rng(7), 128, TextStyle::WebPage);
        assert_eq!(c, d);
    }

    #[test]
    fn generators_differ_across_seeds() {
        assert_ne!(ciphertext(&mut rng(1), 64), ciphertext(&mut rng(2), 64));
    }

    #[test]
    fn requested_lengths_honored() {
        let mut r = rng(9);
        for len in [0usize, 1, 7, 100, 1500] {
            assert_eq!(ciphertext(&mut r, len).len(), len);
            assert_eq!(fernet_like(&mut r, len).len(), len);
            assert_eq!(text_like(&mut r, len, TextStyle::Telemetry).len(), len);
            assert_eq!(text_like(&mut r, len, TextStyle::WebPage).len(), len);
            assert_eq!(media_like(&mut r, len).len(), len);
        }
    }

    #[test]
    fn keyvalue_contains_fields_and_meets_length() {
        let mut r = rng(11);
        let data = keyvalue_plaintext(&mut r, &[("mac", "a4cf12000102"), ("fw", "1.2.3")], 200);
        let text = String::from_utf8_lossy(&data);
        assert!(text.contains("mac=a4cf12000102&"));
        assert!(text.contains("fw=1.2.3&"));
        assert!(data.len() >= 200);
        assert!(normalized_entropy(&data) < 0.4, "check-in payload must read as plaintext");
    }

    #[test]
    fn entropy_ordering_matches_paper() {
        // telemetry < webpage < fernet < ciphertext ≈ media
        let mut r = rng(20);
        let tele = chunked_entropy(&text_like(&mut r, 4000, TextStyle::Telemetry), 200);
        let web = chunked_entropy(&text_like(&mut r, 4000, TextStyle::WebPage), 200);
        let fern = chunked_entropy(&fernet_like(&mut r, 4000), 200);
        let ciph = chunked_entropy(&ciphertext(&mut r, 4000), 200);
        assert!(tele < web && web < fern && fern < ciph, "{tele} {web} {fern} {ciph}");
    }
}
