//! Property-based tests for wire-format invariants: every frame the builder
//! produces must parse back to exactly what was requested, checksums must
//! detect single-bit corruption, and pcap round-trips must be lossless.

use iot_net::checksum::checksum;
use iot_net::mac::MacAddr;
use iot_net::packet::{PacketBuilder, TransportHeader};
use iot_net::pcap;
use iot_net::tcp::TcpFlags;
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr)
}

fn arb_public_ip() -> impl Strategy<Value = Ipv4Addr> {
    (1u8..=223, any::<u8>(), any::<u8>(), 1u8..=254)
        .prop_filter("not in 192.168/16", |(a, b, _, _)| !(*a == 192 && *b == 168))
        .prop_map(|(a, b, c, d)| Ipv4Addr::new(a, b, c, d))
}

fn arb_local_ip() -> impl Strategy<Value = Ipv4Addr> {
    (2u8..=254).prop_map(|d| Ipv4Addr::new(192, 168, 10, d))
}

proptest! {
    #[test]
    fn tcp_build_parse_roundtrip(
        src_mac in arb_mac(),
        dst_mac in arb_mac(),
        src_ip in arb_local_ip(),
        dst_ip in arb_public_ip(),
        sport in 1024u16..,
        dport in 1u16..,
        seq in any::<u32>(),
        ack in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..1500),
        ts in any::<u32>().prop_map(u64::from),
    ) {
        let mut b = PacketBuilder::new(src_mac, dst_mac, src_ip, dst_ip);
        let pkt = b.tcp(ts, sport, dport, seq, ack, TcpFlags::PSH | TcpFlags::ACK, &payload);
        let parsed = pkt.parse().unwrap();
        prop_assert_eq!(parsed.src_mac, src_mac);
        prop_assert_eq!(parsed.dst_mac, dst_mac);
        prop_assert_eq!(parsed.ip.src, src_ip);
        prop_assert_eq!(parsed.ip.dst, dst_ip);
        prop_assert_eq!(parsed.payload, &payload[..]);
        match parsed.transport {
            TransportHeader::Tcp(t) => {
                prop_assert_eq!(t.src_port, sport);
                prop_assert_eq!(t.dst_port, dport);
                prop_assert_eq!(t.seq, seq);
                prop_assert_eq!(t.ack, ack);
            }
            other => prop_assert!(false, "expected TCP, got {:?}", other),
        }
    }

    #[test]
    fn udp_build_parse_roundtrip(
        src_ip in arb_local_ip(),
        dst_ip in arb_public_ip(),
        sport in 1024u16..,
        dport in 1u16..,
        payload in proptest::collection::vec(any::<u8>(), 0..1400),
    ) {
        let mut b = PacketBuilder::new(
            MacAddr::new(0, 1, 2, 3, 4, 5),
            MacAddr::new(9, 8, 7, 6, 5, 4),
            src_ip,
            dst_ip,
        );
        let pkt = b.udp(0, sport, dport, &payload);
        let parsed = pkt.parse().unwrap();
        prop_assert_eq!(parsed.payload, &payload[..]);
        prop_assert_eq!(parsed.transport.src_port(), Some(sport));
        prop_assert_eq!(parsed.transport.dst_port(), Some(dport));
    }

    /// Flipping any single bit of a built TCP frame must make parsing fail
    /// (checksum or structural error) or change the parsed content — never
    /// silently parse to the same packet.
    #[test]
    fn single_bit_corruption_never_silent(
        payload in proptest::collection::vec(any::<u8>(), 1..256),
        bit in 0usize..128,
    ) {
        let mut b = PacketBuilder::new(
            MacAddr::new(0, 1, 2, 3, 4, 5),
            MacAddr::new(9, 8, 7, 6, 5, 4),
            Ipv4Addr::new(192, 168, 10, 4),
            Ipv4Addr::new(8, 8, 4, 4),
        );
        let pkt = b.tcp(0, 40000, 443, 1, 2, TcpFlags::ACK, &payload);
        let mut bytes = pkt.data.to_vec();
        let bit = bit % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        let original = pkt.parse().unwrap();
        match iot_net::packet::ParsedPacket::parse(&bytes) {
            Err(_) => {}
            Ok(parsed) => prop_assert_ne!(parsed, original),
        }
    }

    #[test]
    fn checksum_verification_property(data in proptest::collection::vec(any::<u8>(), 2..512)) {
        // Filling the checksum into any even-offset 2-byte hole makes the
        // whole buffer sum to zero.
        let mut data = data;
        if data.len() % 2 == 1 { data.push(0); }
        data[0] = 0; data[1] = 0;
        let ck = checksum(&data);
        data[0..2].copy_from_slice(&ck.to_be_bytes());
        prop_assert_eq!(checksum(&data), 0);
    }

    #[test]
    fn pcap_roundtrip_lossless(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..800), 1..20),
        base_ts in any::<u32>().prop_map(u64::from),
    ) {
        let mut b = PacketBuilder::new(
            MacAddr::new(1, 1, 1, 1, 1, 1),
            MacAddr::new(2, 2, 2, 2, 2, 2),
            Ipv4Addr::new(192, 168, 10, 9),
            Ipv4Addr::new(93, 184, 216, 34),
        );
        let packets: Vec<_> = payloads
            .iter()
            .enumerate()
            .map(|(i, p)| b.udp(base_ts + i as u64 * 1000, 40000, 53, p))
            .collect();
        let bytes = pcap::to_bytes(&packets).unwrap();
        let back = pcap::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, packets);
    }

    #[test]
    fn mac_parse_roundtrips_all_formats(octets in any::<[u8; 6]>()) {
        let mac = MacAddr(octets);
        prop_assert_eq!(mac.to_string().parse::<MacAddr>().unwrap(), mac);
        prop_assert_eq!(mac.to_hyphen_string().parse::<MacAddr>().unwrap(), mac);
        prop_assert_eq!(mac.to_bare_string().parse::<MacAddr>().unwrap(), mac);
    }
}
