//! Property tests for wire-format invariants: every frame the builder
//! produces must parse back to exactly what was requested, checksums must
//! detect single-bit corruption, and pcap round-trips must be lossless.
//! Driven by the in-tree deterministic PRNG with fixed seeds.

use iot_core::rng::StdRng;
use iot_net::checksum::checksum;
use iot_net::mac::MacAddr;
use iot_net::packet::{PacketBuilder, TransportHeader};
use iot_net::pcap;
use iot_net::tcp::TcpFlags;
use std::net::Ipv4Addr;

const CASES: usize = 64;

fn random_mac(rng: &mut StdRng) -> MacAddr {
    let mut o = [0u8; 6];
    rng.fill(&mut o);
    MacAddr(o)
}

fn random_public_ip(rng: &mut StdRng) -> Ipv4Addr {
    loop {
        let (a, b) = (rng.gen_range(1u8..=223), rng.gen::<u8>());
        if a == 192 && b == 168 {
            continue;
        }
        return Ipv4Addr::new(a, b, rng.gen(), rng.gen_range(1u8..=254));
    }
}

fn random_local_ip(rng: &mut StdRng) -> Ipv4Addr {
    Ipv4Addr::new(192, 168, 10, rng.gen_range(2u8..=254))
}

fn random_payload(rng: &mut StdRng, len_range: std::ops::Range<usize>) -> Vec<u8> {
    let mut v = vec![0u8; rng.gen_range(len_range)];
    rng.fill(&mut v);
    v
}

#[test]
fn tcp_build_parse_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xB1);
    for _ in 0..CASES {
        let (src_mac, dst_mac) = (random_mac(&mut rng), random_mac(&mut rng));
        let (src_ip, dst_ip) = (random_local_ip(&mut rng), random_public_ip(&mut rng));
        let sport = rng.gen_range(1024u16..=u16::MAX);
        let dport = rng.gen_range(1u16..=u16::MAX);
        let (seq, ack): (u32, u32) = (rng.gen(), rng.gen());
        let payload = random_payload(&mut rng, 0..1500);
        let ts = rng.gen::<u32>() as u64;
        let mut b = PacketBuilder::new(src_mac, dst_mac, src_ip, dst_ip);
        let pkt = b.tcp(ts, sport, dport, seq, ack, TcpFlags::PSH | TcpFlags::ACK, &payload);
        let parsed = pkt.parse().unwrap();
        assert_eq!(parsed.src_mac, src_mac);
        assert_eq!(parsed.dst_mac, dst_mac);
        assert_eq!(parsed.ip.src, src_ip);
        assert_eq!(parsed.ip.dst, dst_ip);
        assert_eq!(parsed.payload, &payload[..]);
        match parsed.transport {
            TransportHeader::Tcp(t) => {
                assert_eq!(t.src_port, sport);
                assert_eq!(t.dst_port, dport);
                assert_eq!(t.seq, seq);
                assert_eq!(t.ack, ack);
            }
            other => panic!("expected TCP, got {other:?}"),
        }
    }
}

#[test]
fn udp_build_parse_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xB2);
    for _ in 0..CASES {
        let (src_ip, dst_ip) = (random_local_ip(&mut rng), random_public_ip(&mut rng));
        let sport = rng.gen_range(1024u16..=u16::MAX);
        let dport = rng.gen_range(1u16..=u16::MAX);
        let payload = random_payload(&mut rng, 0..1400);
        let mut b = PacketBuilder::new(
            MacAddr::new(0, 1, 2, 3, 4, 5),
            MacAddr::new(9, 8, 7, 6, 5, 4),
            src_ip,
            dst_ip,
        );
        let pkt = b.udp(0, sport, dport, &payload);
        let parsed = pkt.parse().unwrap();
        assert_eq!(parsed.payload, &payload[..]);
        assert_eq!(parsed.transport.src_port(), Some(sport));
        assert_eq!(parsed.transport.dst_port(), Some(dport));
    }
}

/// Flipping any single bit of a built TCP frame must make parsing fail
/// (checksum or structural error) or change the parsed content — never
/// silently parse to the same packet.
#[test]
fn single_bit_corruption_never_silent() {
    let mut rng = StdRng::seed_from_u64(0xB3);
    for _ in 0..CASES {
        let payload = random_payload(&mut rng, 1..256);
        let bit = rng.gen_range(0usize..128);
        let mut b = PacketBuilder::new(
            MacAddr::new(0, 1, 2, 3, 4, 5),
            MacAddr::new(9, 8, 7, 6, 5, 4),
            Ipv4Addr::new(192, 168, 10, 4),
            Ipv4Addr::new(8, 8, 4, 4),
        );
        let pkt = b.tcp(0, 40000, 443, 1, 2, TcpFlags::ACK, &payload);
        let mut bytes = pkt.data.to_vec();
        let bit = bit % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        let original = pkt.parse().unwrap();
        match iot_net::packet::ParsedPacket::parse(&bytes) {
            Err(_) => {}
            Ok(parsed) => assert_ne!(parsed, original),
        }
    }
}

#[test]
fn checksum_verification_property() {
    let mut rng = StdRng::seed_from_u64(0xB4);
    for _ in 0..CASES {
        // Filling the checksum into any even-offset 2-byte hole makes the
        // whole buffer sum to zero.
        let mut data = random_payload(&mut rng, 2..512);
        if data.len() % 2 == 1 {
            data.push(0);
        }
        data[0] = 0;
        data[1] = 0;
        let ck = checksum(&data);
        data[0..2].copy_from_slice(&ck.to_be_bytes());
        assert_eq!(checksum(&data), 0);
    }
}

#[test]
fn pcap_roundtrip_lossless() {
    let mut rng = StdRng::seed_from_u64(0xB5);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..20);
        let payloads: Vec<Vec<u8>> =
            (0..n).map(|_| random_payload(&mut rng, 0..800)).collect();
        let base_ts = rng.gen::<u32>() as u64;
        let mut b = PacketBuilder::new(
            MacAddr::new(1, 1, 1, 1, 1, 1),
            MacAddr::new(2, 2, 2, 2, 2, 2),
            Ipv4Addr::new(192, 168, 10, 9),
            Ipv4Addr::new(93, 184, 216, 34),
        );
        let packets: Vec<_> = payloads
            .iter()
            .enumerate()
            .map(|(i, p)| b.udp(base_ts + i as u64 * 1000, 40000, 53, p))
            .collect();
        let bytes = pcap::to_bytes(&packets).unwrap();
        let back = pcap::from_bytes(&bytes).unwrap();
        assert_eq!(back, packets);
    }
}

#[test]
fn mac_parse_roundtrips_all_formats() {
    let mut rng = StdRng::seed_from_u64(0xB6);
    for _ in 0..CASES {
        let mac = random_mac(&mut rng);
        assert_eq!(mac.to_string().parse::<MacAddr>().unwrap(), mac);
        assert_eq!(mac.to_hyphen_string().parse::<MacAddr>().unwrap(), mac);
        assert_eq!(mac.to_bare_string().parse::<MacAddr>().unwrap(), mac);
    }
}
