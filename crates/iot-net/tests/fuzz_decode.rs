//! Seeded fuzz tests for frame and capture-file decoding: random bytes,
//! truncated prefixes, and bit-flipped variants of valid encodings must
//! never panic `Packet::parse`, `Packet::parse_frame`, or the pcap
//! readers. The lenient reader additionally must uphold its salvage
//! accounting (`records_ok` consistency) on arbitrary input.

use iot_core::rng::StdRng;
use iot_net::pcap::{from_bytes, from_bytes_lenient, PcapWriter};
use iot_net::{MacAddr, Packet, PacketBuilder, TcpFlags};
use std::net::Ipv4Addr;
use std::panic::{catch_unwind, AssertUnwindSafe};

const CASES: usize = 96;

fn random_bytes(rng: &mut StdRng, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(0..max_len);
    let mut buf = vec![0u8; len];
    rng.fill(&mut buf);
    buf
}

/// A pair of valid frames (TCP and UDP) from the builder.
fn valid_frames() -> Vec<Packet> {
    let mut b = PacketBuilder::new(
        MacAddr::new(0xa4, 0xcf, 0x12, 0x00, 0x00, 0x01),
        MacAddr::new(0x00, 0x16, 0x3e, 0x00, 0x00, 0x02),
        Ipv4Addr::new(192, 168, 10, 21),
        Ipv4Addr::new(52, 84, 9, 9),
    );
    vec![
        b.tcp(1_000_000, 49152, 443, 7, 0, TcpFlags::SYN, b"hello over tcp"),
        b.udp(2_000_000, 50000, 53, b"dns-ish payload bytes"),
    ]
}

fn assert_no_panic(what: &str, case: usize, f: impl FnOnce()) {
    let outcome = catch_unwind(AssertUnwindSafe(f));
    assert!(outcome.is_ok(), "{what}: case {case} panicked");
}

#[test]
fn frame_parse_never_panics() {
    let mut rng = StdRng::seed_from_u64(0xF4A3E);
    for case in 0..CASES {
        let pkt = Packet::new(case as u64, random_bytes(&mut rng, 200));
        assert_no_panic("packet.parse/random", case, || {
            let _ = pkt.parse();
            let _ = pkt.parse_frame();
        });
    }
    for (v, frame) in valid_frames().into_iter().enumerate() {
        // Every truncated prefix — exactly what snaplen capture produces.
        for cut in 0..frame.data.len() {
            let pkt = Packet::new(0, frame.data[..cut].to_vec());
            assert_no_panic("packet.parse/truncated", v * 1000 + cut, || {
                let _ = pkt.parse();
                let _ = pkt.parse_frame();
            });
        }
        // Single-bit corruption across the whole frame.
        let mut flip_rng = StdRng::seed_from_u64(0xF4A3E ^ v as u64);
        for case in 0..CASES {
            let mut data = frame.data.clone();
            let bit = flip_rng.gen_range(0..data.len() * 8);
            data[bit / 8] ^= 1 << (bit % 8);
            let pkt = Packet::new(0, data);
            assert_no_panic("packet.parse/bitflip", case, || {
                let _ = pkt.parse();
                let _ = pkt.parse_frame();
            });
        }
    }
}

#[test]
fn pcap_readers_never_panic() {
    // A valid two-record capture to truncate and corrupt.
    let mut writer = PcapWriter::new(Vec::new()).expect("header");
    for frame in valid_frames() {
        writer.write_packet(&frame).expect("write");
    }
    let valid = writer.finish().expect("finish");

    let mut rng = StdRng::seed_from_u64(0x9CA9);
    for case in 0..CASES {
        let buf = random_bytes(&mut rng, 800);
        assert_no_panic("pcap/random", case, || {
            let _ = from_bytes(&buf);
            let _ = from_bytes_lenient(&buf);
        });
    }
    for cut in 0..valid.len() {
        assert_no_panic("pcap/truncated", cut, || {
            let _ = from_bytes(&valid[..cut]);
            let _ = from_bytes_lenient(&valid[..cut]);
        });
    }
    let mut flip_rng = StdRng::seed_from_u64(0x9CA9 ^ 0xF11F);
    for case in 0..CASES {
        let mut buf = valid.clone();
        let bit = flip_rng.gen_range(0..buf.len() * 8);
        buf[bit / 8] ^= 1 << (bit % 8);
        assert_no_panic("pcap/bitflip", case, || {
            let _ = from_bytes(&buf);
            let _ = from_bytes_lenient(&buf);
        });
    }
}

#[test]
fn lenient_reader_accounting_holds_on_garbage() {
    // On any input the lenient reader accepts, every salvaged packet must
    // be a counted intact record, and resyncs imply skipped bytes.
    let mut rng = StdRng::seed_from_u64(0x5A1A6E);
    for case in 0..CASES {
        let buf = random_bytes(&mut rng, 2048);
        if let Ok((packets, stats)) = from_bytes_lenient(&buf) {
            assert_eq!(
                packets.len() as u64,
                stats.records_ok,
                "case {case}: salvaged {} packets but records_ok {}",
                packets.len(),
                stats.records_ok
            );
            if stats.resyncs > 0 {
                assert!(
                    stats.bytes_skipped > 0,
                    "case {case}: resynced without skipping bytes"
                );
            }
        }
    }
}
