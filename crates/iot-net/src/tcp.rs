//! TCP header encoding and parsing with pseudo-header checksum.

use crate::checksum::Checksum;
use crate::error::Error;
use crate::Result;
use std::fmt;
use std::net::Ipv4Addr;

/// Minimum TCP header length (no options).
pub const MIN_HEADER_LEN: usize = 20;

/// TCP control flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN flag.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN flag.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST flag.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH flag.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK flag.
    pub const ACK: TcpFlags = TcpFlags(0x10);

    /// True if all flags in `other` are set in `self`.
    pub fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }
}

impl std::ops::BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | rhs.0)
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        for (bit, name) in [
            (Self::SYN, "SYN"),
            (Self::ACK, "ACK"),
            (Self::PSH, "PSH"),
            (Self::FIN, "FIN"),
            (Self::RST, "RST"),
        ] {
            if self.contains(bit) {
                parts.push(name);
            }
        }
        if parts.is_empty() {
            write!(f, "-")
        } else {
            write!(f, "{}", parts.join("|"))
        }
    }
}

/// A decoded TCP header (options are not generated and are skipped on parse).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Control flags.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
}

impl TcpHeader {
    /// Parses a header, verifies the checksum against the pseudo-header, and
    /// returns it with the segment payload.
    pub fn parse<'a>(data: &'a [u8], src: Ipv4Addr, dst: Ipv4Addr) -> Result<(Self, &'a [u8])> {
        if data.len() < MIN_HEADER_LEN {
            return Err(Error::Truncated {
                layer: "tcp",
                needed: MIN_HEADER_LEN,
                available: data.len(),
            });
        }
        let data_offset = usize::from(data[12] >> 4) * 4;
        if data_offset < MIN_HEADER_LEN || data.len() < data_offset {
            return Err(Error::Truncated {
                layer: "tcp",
                needed: data_offset.max(MIN_HEADER_LEN),
                available: data.len(),
            });
        }
        let mut ck = Checksum::new();
        ck.push_pseudo_header(src, dst, crate::ipv4::protocol::TCP, data.len() as u16);
        ck.push(data);
        let computed = ck.finish();
        if computed != 0 {
            let found = u16::from_be_bytes([data[16], data[17]]);
            return Err(Error::BadChecksum {
                layer: "tcp",
                found,
                computed,
            });
        }
        let header = TcpHeader {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            seq: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
            ack: u32::from_be_bytes([data[8], data[9], data[10], data[11]]),
            flags: TcpFlags(data[13]),
            window: u16::from_be_bytes([data[14], data[15]]),
        };
        Ok((header, &data[data_offset..]))
    }

    /// Serializes header + payload, computing the checksum over the
    /// pseudo-header for `src`/`dst`.
    pub fn encode(&self, payload: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Vec<u8> {
        let mut out = Vec::with_capacity(MIN_HEADER_LEN + payload.len());
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        out.push(0x50); // data offset 5 words
        out.push(self.flags.0);
        out.extend_from_slice(&self.window.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&[0, 0]); // urgent pointer
        out.extend_from_slice(payload);
        let mut ck = Checksum::new();
        ck.push_pseudo_header(src, dst, crate::ipv4::protocol::TCP, out.len() as u16);
        ck.push(&out);
        let sum = ck.finish();
        out[16..18].copy_from_slice(&sum.to_be_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(192, 168, 10, 7);
    const DST: Ipv4Addr = Ipv4Addr::new(52, 84, 1, 9);

    fn sample() -> TcpHeader {
        TcpHeader {
            src_port: 49152,
            dst_port: 443,
            seq: 0xdeadbeef,
            ack: 0x01020304,
            flags: TcpFlags::PSH | TcpFlags::ACK,
            window: 65535,
        }
    }

    #[test]
    fn roundtrip() {
        let h = sample();
        let wire = h.encode(b"tls application data", SRC, DST);
        let (parsed, payload) = TcpHeader::parse(&wire, SRC, DST).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(payload, b"tls application data");
    }

    #[test]
    fn checksum_binds_addresses() {
        let wire = sample().encode(b"x", SRC, DST);
        // Same bytes but claimed to be from a different source must fail.
        assert!(matches!(
            TcpHeader::parse(&wire, Ipv4Addr::new(1, 2, 3, 4), DST),
            Err(Error::BadChecksum { layer: "tcp", .. })
        ));
    }

    #[test]
    fn corrupted_payload_detected() {
        let mut wire = sample().encode(b"hello world", SRC, DST);
        let last = wire.len() - 1;
        wire[last] ^= 0x01;
        assert!(TcpHeader::parse(&wire, SRC, DST).is_err());
    }

    #[test]
    fn flags_display() {
        assert_eq!((TcpFlags::SYN | TcpFlags::ACK).to_string(), "SYN|ACK");
        assert_eq!(TcpFlags::default().to_string(), "-");
    }

    #[test]
    fn empty_payload() {
        let h = TcpHeader {
            flags: TcpFlags::SYN,
            ..sample()
        };
        let wire = h.encode(&[], SRC, DST);
        let (parsed, payload) = TcpHeader::parse(&wire, SRC, DST).unwrap();
        assert!(parsed.flags.contains(TcpFlags::SYN));
        assert!(payload.is_empty());
    }

    #[test]
    fn truncated() {
        assert!(TcpHeader::parse(&[0u8; 8], SRC, DST).is_err());
    }
}
