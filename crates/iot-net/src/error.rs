//! Error types for wire-format parsing and pcap I/O.

use std::fmt;

/// Errors produced while encoding/decoding packets or reading capture files.
#[derive(Debug)]
pub enum Error {
    /// The buffer is shorter than the fixed header being parsed.
    Truncated {
        /// Layer being parsed, e.g. `"ipv4"`.
        layer: &'static str,
        /// Bytes required to make progress.
        needed: usize,
        /// Bytes available in the buffer.
        available: usize,
    },
    /// A length field disagrees with the amount of data present.
    LengthMismatch {
        /// Layer the length field belongs to.
        layer: &'static str,
        /// Length claimed by the header.
        claimed: usize,
        /// Length actually available.
        actual: usize,
    },
    /// A field holds a value the parser does not support.
    Unsupported {
        /// Layer containing the field.
        layer: &'static str,
        /// Description of the unsupported value.
        what: String,
    },
    /// A checksum failed verification.
    BadChecksum {
        /// Layer whose checksum failed.
        layer: &'static str,
        /// Checksum found in the header.
        found: u16,
        /// Checksum computed over the data.
        computed: u16,
    },
    /// A pcap file had an unknown magic number.
    BadMagic(u32),
    /// Underlying I/O failure while reading or writing a capture file.
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Truncated {
                layer,
                needed,
                available,
            } => write!(
                f,
                "{layer}: truncated packet (need {needed} bytes, have {available})"
            ),
            Error::LengthMismatch {
                layer,
                claimed,
                actual,
            } => write!(
                f,
                "{layer}: length field claims {claimed} bytes but {actual} are present"
            ),
            Error::Unsupported { layer, what } => write!(f, "{layer}: unsupported {what}"),
            Error::BadChecksum {
                layer,
                found,
                computed,
            } => write!(
                f,
                "{layer}: checksum mismatch (header 0x{found:04x}, computed 0x{computed:04x})"
            ),
            Error::BadMagic(m) => write!(f, "pcap: unknown magic number 0x{m:08x}"),
            Error::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_truncated() {
        let e = Error::Truncated {
            layer: "ipv4",
            needed: 20,
            available: 4,
        };
        assert_eq!(e.to_string(), "ipv4: truncated packet (need 20 bytes, have 4)");
    }

    #[test]
    fn display_checksum() {
        let e = Error::BadChecksum {
            layer: "tcp",
            found: 0x1234,
            computed: 0xabcd,
        };
        assert!(e.to_string().contains("0x1234"));
        assert!(e.to_string().contains("0xabcd"));
    }

    #[test]
    fn io_error_source_preserved() {
        let e = Error::from(std::io::Error::new(std::io::ErrorKind::Other, "boom"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
