//! Classic libpcap capture-file format (the format tcpdump writes).
//!
//! The Mon(IoT)r testbed stores one pcap file per device MAC, plus
//! per-experiment label files. This module implements the classic
//! microsecond-resolution format (magic `0xa1b2c3d4`) so simulated captures
//! are byte-compatible with tcpdump output and can be exchanged with
//! external tools.

use crate::error::Error;
use crate::packet::Packet;
use crate::Result;
use std::io::{Read, Write};

/// Native-order magic for microsecond timestamps.
pub const MAGIC_MICROS: u32 = 0xa1b2_c3d4;
/// Byte-swapped magic (file written on an opposite-endian machine).
pub const MAGIC_MICROS_SWAPPED: u32 = 0xd4c3_b2a1;
/// Link type for Ethernet frames.
pub const LINKTYPE_ETHERNET: u32 = 1;
/// Global header length.
pub const GLOBAL_HEADER_LEN: usize = 24;
/// Per-record header length.
pub const RECORD_HEADER_LEN: usize = 16;

/// One record from a capture file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapRecord {
    /// Seconds since the epoch.
    pub ts_sec: u32,
    /// Microseconds within the second.
    pub ts_usec: u32,
    /// Original length of the packet on the wire.
    pub orig_len: u32,
    /// Captured bytes (always the full frame here; no snaplen truncation).
    pub data: Vec<u8>,
}

impl PcapRecord {
    /// Timestamp in microseconds since the epoch.
    pub fn ts_micros(&self) -> u64 {
        u64::from(self.ts_sec) * 1_000_000 + u64::from(self.ts_usec)
    }

    /// Converts this record into an in-memory [`Packet`].
    pub fn into_packet(self) -> Packet {
        Packet::new(self.ts_micros(), self.data)
    }
}

/// Streaming pcap writer.
pub struct PcapWriter<W: Write> {
    inner: W,
}

impl<W: Write> PcapWriter<W> {
    /// Writes the global header and returns the writer.
    pub fn new(mut inner: W) -> Result<Self> {
        let mut hdr = [0u8; GLOBAL_HEADER_LEN];
        hdr[0..4].copy_from_slice(&MAGIC_MICROS.to_le_bytes());
        hdr[4..6].copy_from_slice(&2u16.to_le_bytes()); // version major
        hdr[6..8].copy_from_slice(&4u16.to_le_bytes()); // version minor
        // thiszone (4) and sigfigs (4) remain zero
        hdr[16..20].copy_from_slice(&65535u32.to_le_bytes()); // snaplen
        hdr[20..24].copy_from_slice(&LINKTYPE_ETHERNET.to_le_bytes());
        inner.write_all(&hdr)?;
        Ok(PcapWriter { inner })
    }

    /// Appends one packet.
    pub fn write_packet(&mut self, pkt: &Packet) -> Result<()> {
        let len = pkt.data.len() as u32;
        self.write_raw(
            (pkt.ts_micros / 1_000_000) as u32,
            (pkt.ts_micros % 1_000_000) as u32,
            len,
            &pkt.data,
        )
    }

    /// Appends one record verbatim, preserving an `orig_len` larger than
    /// the captured data — how tcpdump writes snaplen-truncated records.
    pub fn write_record(&mut self, rec: &PcapRecord) -> Result<()> {
        self.write_raw(rec.ts_sec, rec.ts_usec, rec.orig_len, &rec.data)
    }

    fn write_raw(&mut self, ts_sec: u32, ts_usec: u32, orig_len: u32, data: &[u8]) -> Result<()> {
        let incl_len = data.len() as u32;
        let mut hdr = [0u8; RECORD_HEADER_LEN];
        hdr[0..4].copy_from_slice(&ts_sec.to_le_bytes());
        hdr[4..8].copy_from_slice(&ts_usec.to_le_bytes());
        hdr[8..12].copy_from_slice(&incl_len.to_le_bytes());
        hdr[12..16].copy_from_slice(&orig_len.max(incl_len).to_le_bytes());
        self.inner.write_all(&hdr)?;
        self.inner.write_all(data)?;
        Ok(())
    }

    /// Flushes and returns the underlying writer.
    pub fn finish(mut self) -> Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Streaming pcap reader; handles both endiannesses.
pub struct PcapReader<R: Read> {
    inner: R,
    swapped: bool,
}

impl<R: Read> PcapReader<R> {
    /// Reads and validates the global header.
    pub fn new(mut inner: R) -> Result<Self> {
        let mut hdr = [0u8; GLOBAL_HEADER_LEN];
        inner.read_exact(&mut hdr)?;
        let magic = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);
        let swapped = match magic {
            MAGIC_MICROS => false,
            MAGIC_MICROS_SWAPPED => true,
            other => return Err(Error::BadMagic(other)),
        };
        Ok(PcapReader { inner, swapped })
    }

    fn read_u32(&self, bytes: [u8; 4]) -> u32 {
        if self.swapped {
            u32::from_be_bytes(bytes)
        } else {
            u32::from_le_bytes(bytes)
        }
    }

    /// Reads the next record; `Ok(None)` at clean end-of-file.
    pub fn next_record(&mut self) -> Result<Option<PcapRecord>> {
        let mut rec = [0u8; RECORD_HEADER_LEN];
        match self.inner.read_exact(&mut rec) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        let ts_sec = self.read_u32([rec[0], rec[1], rec[2], rec[3]]);
        let ts_usec = self.read_u32([rec[4], rec[5], rec[6], rec[7]]);
        let incl_len = self.read_u32([rec[8], rec[9], rec[10], rec[11]]);
        let orig_len = self.read_u32([rec[12], rec[13], rec[14], rec[15]]);
        // Read via `take` + `read_to_end` so a corrupt incl_len (e.g.
        // 0xfffffff0 from a garbled header) hits EOF instead of trying to
        // allocate gigabytes up front.
        let mut data = Vec::new();
        (&mut self.inner)
            .take(u64::from(incl_len))
            .read_to_end(&mut data)?;
        if data.len() < incl_len as usize {
            return Err(Error::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!(
                    "pcap record claims {incl_len} bytes but only {} remain",
                    data.len()
                ),
            )));
        }
        Ok(Some(PcapRecord {
            ts_sec,
            ts_usec,
            orig_len,
            data,
        }))
    }

    /// Collects all remaining records as [`Packet`]s.
    pub fn packets(mut self) -> Result<Vec<Packet>> {
        let mut out = Vec::new();
        while let Some(rec) = self.next_record()? {
            out.push(rec.into_packet());
        }
        Ok(out)
    }

    /// Collects all salvageable records as [`Packet`]s, resynchronizing
    /// past corrupt record headers and torn tails instead of aborting.
    ///
    /// The strict [`PcapReader::packets`] has all-or-nothing semantics:
    /// one garbled `incl_len` discards an entire device capture. This
    /// reader buffers the remaining bytes and walks them with
    /// [`salvage_records`], so a single bad record costs only the bytes
    /// between it and the next plausible record header.
    pub fn packets_lenient(mut self) -> Result<(Vec<Packet>, SalvageStats)> {
        let mut buf = Vec::new();
        self.inner.read_to_end(&mut buf)?;
        let (records, stats) = salvage_records(&buf, self.swapped);
        Ok((
            records.into_iter().map(PcapRecord::into_packet).collect(),
            stats,
        ))
    }
}

/// What the lenient reader recovered — and what it had to give up — from
/// one degraded capture. Counts merge by addition across captures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SalvageStats {
    /// Records recovered intact.
    pub records_ok: u64,
    /// Recovered records with `incl_len < orig_len` (snaplen truncation);
    /// these are also counted in [`SalvageStats::records_ok`].
    pub records_truncated: u64,
    /// Resynchronization events: positions where no plausible record
    /// header was found and the reader had to scan forward.
    pub resyncs: u64,
    /// Bytes discarded while scanning for the next plausible header.
    pub bytes_skipped: u64,
    /// Bytes lost to a torn tail (a final record cut off mid-data, or a
    /// trailing fragment shorter than a record header).
    pub torn_tail_bytes: u64,
}

impl SalvageStats {
    /// Folds another capture's salvage outcome into this one.
    pub fn merge(&mut self, other: &SalvageStats) {
        self.records_ok += other.records_ok;
        self.records_truncated += other.records_truncated;
        self.resyncs += other.resyncs;
        self.bytes_skipped += other.bytes_skipped;
        self.torn_tail_bytes += other.torn_tail_bytes;
    }

    /// True when the capture was recovered without losing anything.
    pub fn is_pristine(&self) -> bool {
        self.resyncs == 0 && self.bytes_skipped == 0 && self.torn_tail_bytes == 0
    }
}

/// Largest `incl_len`/`orig_len` a record header may claim and still be
/// considered plausible during resynchronization. Generous against the
/// 65535 snaplen the writer declares, but small enough that a random
/// 32-bit value is implausible with probability ≈ 0.99994.
const MAX_PLAUSIBLE_LEN: u32 = 256 * 1024;

/// Smallest `incl_len` a plausible record may claim: an Ethernet header.
/// Real captures never contain shorter frames, and requiring it prunes
/// most false resynchronization targets inside payload bytes.
const MIN_PLAUSIBLE_LEN: u32 = 14;

/// How the bytes at one position read as a record header.
enum HeaderVerdict {
    /// Sane header whose data fits: `(ts_sec, ts_usec, incl, orig)`.
    Record(u32, u32, u32, u32),
    /// Sane header but the data runs past EOF — a torn tail.
    Torn,
    /// Not a believable record header.
    Corrupt,
}

/// Classifies the candidate record header at `buf[at..]`. Plausibility
/// requires sub-second microseconds, frame lengths between an Ethernet
/// header and [`MAX_PLAUSIBLE_LEN`], and `orig_len >= incl_len` (the
/// writer guarantees it; tcpdump's snaplen semantics imply it).
fn classify_header(buf: &[u8], at: usize, swapped: bool) -> HeaderVerdict {
    if at + RECORD_HEADER_LEN > buf.len() {
        return HeaderVerdict::Corrupt;
    }
    let field = |o: usize| {
        let b = [buf[at + o], buf[at + o + 1], buf[at + o + 2], buf[at + o + 3]];
        if swapped {
            u32::from_be_bytes(b)
        } else {
            u32::from_le_bytes(b)
        }
    };
    let (ts_sec, ts_usec, incl_len, orig_len) = (field(0), field(4), field(8), field(12));
    let sane = ts_usec < 1_000_000
        && (MIN_PLAUSIBLE_LEN..=MAX_PLAUSIBLE_LEN).contains(&incl_len)
        && orig_len >= incl_len
        && orig_len <= MAX_PLAUSIBLE_LEN;
    if !sane {
        return HeaderVerdict::Corrupt;
    }
    if at + RECORD_HEADER_LEN + incl_len as usize > buf.len() {
        return HeaderVerdict::Torn;
    }
    HeaderVerdict::Record(ts_sec, ts_usec, incl_len, orig_len)
}

/// Walks a record region (everything after the global header), salvaging
/// each plausible record and scanning byte-by-byte past corruption.
fn salvage_records(buf: &[u8], swapped: bool) -> (Vec<PcapRecord>, SalvageStats) {
    let mut out = Vec::new();
    let mut stats = SalvageStats::default();
    let mut pos = 0usize;
    while pos < buf.len() {
        if buf.len() - pos < RECORD_HEADER_LEN {
            // Trailing fragment too short to even hold a header.
            stats.torn_tail_bytes += (buf.len() - pos) as u64;
            break;
        }
        match classify_header(buf, pos, swapped) {
            HeaderVerdict::Record(ts_sec, ts_usec, incl_len, orig_len) => {
                let start = pos + RECORD_HEADER_LEN;
                out.push(PcapRecord {
                    ts_sec,
                    ts_usec,
                    orig_len,
                    data: buf[start..start + incl_len as usize].to_vec(),
                });
                stats.records_ok += 1;
                if incl_len < orig_len {
                    stats.records_truncated += 1;
                }
                pos = start + incl_len as usize;
            }
            HeaderVerdict::Torn => {
                // Header is sane but the data runs past EOF: torn tail.
                stats.torn_tail_bytes += (buf.len() - pos) as u64;
                break;
            }
            HeaderVerdict::Corrupt => {
                // Corrupt header: scan forward for the next plausible one.
                stats.resyncs += 1;
                let scan_from = pos;
                pos += 1;
                // Only a *complete* record re-anchors the framing: a
                // torn-looking candidate mid-payload would end salvage
                // early and lose every intact record after it.
                while pos + RECORD_HEADER_LEN <= buf.len()
                    && !matches!(classify_header(buf, pos, swapped), HeaderVerdict::Record(..))
                {
                    pos += 1;
                }
                if pos + RECORD_HEADER_LEN > buf.len() {
                    // Nothing plausible before EOF: everything left is lost.
                    stats.bytes_skipped += (buf.len() - scan_from) as u64;
                    break;
                }
                stats.bytes_skipped += (pos - scan_from) as u64;
            }
        }
    }
    (out, stats)
}

/// Serializes packets to an in-memory pcap byte buffer.
pub fn to_bytes(packets: &[Packet]) -> Result<Vec<u8>> {
    let mut w = PcapWriter::new(Vec::new())?;
    for p in packets {
        w.write_packet(p)?;
    }
    w.finish()
}

/// Parses packets from an in-memory pcap byte buffer.
pub fn from_bytes(bytes: &[u8]) -> Result<Vec<Packet>> {
    PcapReader::new(bytes)?.packets()
}

/// Parses as many packets as can be salvaged from a possibly-degraded
/// in-memory pcap buffer. Still fails on an unreadable global header
/// (wrong magic / shorter than 24 bytes): with no known endianness there
/// is no framing to resynchronize to.
pub fn from_bytes_lenient(bytes: &[u8]) -> Result<(Vec<Packet>, SalvageStats)> {
    PcapReader::new(bytes)?.packets_lenient()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mac::MacAddr;
    use crate::packet::PacketBuilder;
    use crate::tcp::TcpFlags;
    use std::net::Ipv4Addr;

    fn sample_packets() -> Vec<Packet> {
        let mut b = PacketBuilder::new(
            MacAddr::new(1, 2, 3, 4, 5, 6),
            MacAddr::new(6, 5, 4, 3, 2, 1),
            Ipv4Addr::new(192, 168, 10, 2),
            Ipv4Addr::new(93, 184, 216, 34),
        );
        vec![
            b.tcp(1_500_000, 5000, 443, 1, 0, TcpFlags::SYN, &[]),
            b.udp(2_250_000, 5001, 53, b"dns"),
            b.tcp(90_000_000_000, 5000, 443, 2, 1, TcpFlags::ACK, b"data"),
        ]
    }

    #[test]
    fn roundtrip() {
        let packets = sample_packets();
        let bytes = to_bytes(&packets).unwrap();
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back, packets);
    }

    #[test]
    fn global_header_layout() {
        let bytes = to_bytes(&[]).unwrap();
        assert_eq!(bytes.len(), GLOBAL_HEADER_LEN);
        assert_eq!(&bytes[0..4], &MAGIC_MICROS.to_le_bytes());
        assert_eq!(u32::from_le_bytes(bytes[20..24].try_into().unwrap()), LINKTYPE_ETHERNET);
    }

    #[test]
    fn swapped_endianness_readable() {
        let packets = sample_packets();
        let mut bytes = to_bytes(&packets).unwrap();
        // Byte-swap every header field to emulate a big-endian writer.
        bytes[0..4].copy_from_slice(&MAGIC_MICROS.to_be_bytes());
        for field in [4usize, 6] {
            bytes.swap(field, field + 1);
        }
        for field in [8usize, 12, 16, 20] {
            bytes[field..field + 4].reverse();
        }
        let mut offset = GLOBAL_HEADER_LEN;
        while offset < bytes.len() {
            for field in 0..4 {
                bytes[offset + field * 4..offset + field * 4 + 4].reverse();
            }
            let incl = u32::from_be_bytes(bytes[offset + 8..offset + 12].try_into().unwrap());
            offset += RECORD_HEADER_LEN + incl as usize;
        }
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back, packets);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = to_bytes(&[]).unwrap();
        bytes[0] = 0x00;
        assert!(matches!(from_bytes(&bytes), Err(Error::BadMagic(_))));
    }

    #[test]
    fn truncated_record_is_io_error() {
        let packets = sample_packets();
        let bytes = to_bytes(&packets).unwrap();
        let cut = &bytes[..bytes.len() - 3];
        assert!(matches!(from_bytes(cut), Err(Error::Io(_))));
    }

    #[test]
    fn lenient_matches_strict_on_clean_input() {
        let packets = sample_packets();
        let bytes = to_bytes(&packets).unwrap();
        let (back, stats) = from_bytes_lenient(&bytes).unwrap();
        assert_eq!(back, packets);
        assert!(stats.is_pristine());
        assert_eq!(stats.records_ok, packets.len() as u64);
        assert_eq!(stats.records_truncated, 0);
    }

    #[test]
    fn lenient_resyncs_past_corrupt_record_header() {
        let packets = sample_packets();
        let mut bytes = to_bytes(&packets).unwrap();
        // Garble the second record's incl_len to an absurd value.
        let second = GLOBAL_HEADER_LEN + RECORD_HEADER_LEN + packets[0].data.len();
        bytes[second + 8..second + 12].copy_from_slice(&0xfeed_beefu32.to_le_bytes());
        assert!(from_bytes(&bytes).is_err(), "strict mode must still abort");
        let (back, stats) = from_bytes_lenient(&bytes).unwrap();
        // First and third packets survive; the corrupted one is skipped.
        assert_eq!(back.len(), 2);
        assert_eq!(back[0], packets[0]);
        assert_eq!(back[1], packets[2]);
        assert_eq!(stats.resyncs, 1);
        assert!(stats.bytes_skipped > 0);
    }

    #[test]
    fn lenient_salvages_before_torn_tail() {
        let packets = sample_packets();
        let bytes = to_bytes(&packets).unwrap();
        // Tear mid-way through the last record's data.
        let cut = &bytes[..bytes.len() - 2];
        let (back, stats) = from_bytes_lenient(cut).unwrap();
        assert_eq!(back.len(), packets.len() - 1);
        assert_eq!(back, packets[..2]);
        assert!(stats.torn_tail_bytes > 0);
    }

    #[test]
    fn lenient_preserves_snaplen_truncated_records() {
        let packets = sample_packets();
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for p in &packets {
            w.write_record(&PcapRecord {
                ts_sec: (p.ts_micros / 1_000_000) as u32,
                ts_usec: (p.ts_micros % 1_000_000) as u32,
                orig_len: p.data.len() as u32 + 40, // snaplen cut 40 bytes
                data: p.data.clone(),
            })
            .unwrap();
        }
        let bytes = w.finish().unwrap();
        let (back, stats) = from_bytes_lenient(&bytes).unwrap();
        assert_eq!(back.len(), packets.len());
        assert_eq!(stats.records_truncated, packets.len() as u64);
        assert!(stats.is_pristine());
    }

    #[test]
    fn lenient_survives_random_garbage_between_records() {
        let packets = sample_packets();
        let clean = to_bytes(&packets).unwrap();
        // Splice 100 bytes of high-valued garbage between records 1 and 2.
        let splice_at = GLOBAL_HEADER_LEN + RECORD_HEADER_LEN + packets[0].data.len();
        let mut bytes = clean[..splice_at].to_vec();
        bytes.extend(std::iter::repeat(0xEEu8).take(100));
        bytes.extend_from_slice(&clean[splice_at..]);
        let (back, stats) = from_bytes_lenient(&bytes).unwrap();
        assert!(back.len() >= 2, "salvaged {} records", back.len());
        assert_eq!(*back.last().unwrap(), packets[2]);
        assert!(stats.resyncs >= 1);
        assert!(stats.bytes_skipped >= 100);
    }

    #[test]
    fn lenient_empty_record_region_is_fine() {
        let (back, stats) = from_bytes_lenient(&to_bytes(&[]).unwrap()).unwrap();
        assert!(back.is_empty());
        assert!(stats.is_pristine());
    }

    #[test]
    fn lenient_still_rejects_bad_magic() {
        let mut bytes = to_bytes(&sample_packets()).unwrap();
        bytes[0] = 0x00;
        assert!(matches!(from_bytes_lenient(&bytes), Err(Error::BadMagic(_))));
    }

    #[test]
    fn strict_reader_does_not_overallocate_on_huge_incl_len() {
        let mut bytes = to_bytes(&sample_packets()).unwrap();
        bytes[GLOBAL_HEADER_LEN + 8..GLOBAL_HEADER_LEN + 12]
            .copy_from_slice(&u32::MAX.to_le_bytes());
        // Must error (EOF), not abort on a 4 GiB allocation.
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn timestamps_preserved_to_microsecond() {
        let packets = sample_packets();
        let bytes = to_bytes(&packets).unwrap();
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back[0].ts_micros, 1_500_000);
        assert_eq!(back[1].ts_micros, 2_250_000);
        assert_eq!(back[2].ts_micros, 90_000_000_000);
    }
}
