//! Classic libpcap capture-file format (the format tcpdump writes).
//!
//! The Mon(IoT)r testbed stores one pcap file per device MAC, plus
//! per-experiment label files. This module implements the classic
//! microsecond-resolution format (magic `0xa1b2c3d4`) so simulated captures
//! are byte-compatible with tcpdump output and can be exchanged with
//! external tools.

use crate::error::Error;
use crate::packet::Packet;
use crate::Result;
use std::io::{Read, Write};

/// Native-order magic for microsecond timestamps.
pub const MAGIC_MICROS: u32 = 0xa1b2_c3d4;
/// Byte-swapped magic (file written on an opposite-endian machine).
pub const MAGIC_MICROS_SWAPPED: u32 = 0xd4c3_b2a1;
/// Link type for Ethernet frames.
pub const LINKTYPE_ETHERNET: u32 = 1;
/// Global header length.
pub const GLOBAL_HEADER_LEN: usize = 24;
/// Per-record header length.
pub const RECORD_HEADER_LEN: usize = 16;

/// One record from a capture file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapRecord {
    /// Seconds since the epoch.
    pub ts_sec: u32,
    /// Microseconds within the second.
    pub ts_usec: u32,
    /// Original length of the packet on the wire.
    pub orig_len: u32,
    /// Captured bytes (always the full frame here; no snaplen truncation).
    pub data: Vec<u8>,
}

impl PcapRecord {
    /// Timestamp in microseconds since the epoch.
    pub fn ts_micros(&self) -> u64 {
        u64::from(self.ts_sec) * 1_000_000 + u64::from(self.ts_usec)
    }

    /// Converts this record into an in-memory [`Packet`].
    pub fn into_packet(self) -> Packet {
        Packet::new(self.ts_micros(), self.data)
    }
}

/// Streaming pcap writer.
pub struct PcapWriter<W: Write> {
    inner: W,
}

impl<W: Write> PcapWriter<W> {
    /// Writes the global header and returns the writer.
    pub fn new(mut inner: W) -> Result<Self> {
        let mut hdr = [0u8; GLOBAL_HEADER_LEN];
        hdr[0..4].copy_from_slice(&MAGIC_MICROS.to_le_bytes());
        hdr[4..6].copy_from_slice(&2u16.to_le_bytes()); // version major
        hdr[6..8].copy_from_slice(&4u16.to_le_bytes()); // version minor
        // thiszone (4) and sigfigs (4) remain zero
        hdr[16..20].copy_from_slice(&65535u32.to_le_bytes()); // snaplen
        hdr[20..24].copy_from_slice(&LINKTYPE_ETHERNET.to_le_bytes());
        inner.write_all(&hdr)?;
        Ok(PcapWriter { inner })
    }

    /// Appends one packet.
    pub fn write_packet(&mut self, pkt: &Packet) -> Result<()> {
        let ts_sec = (pkt.ts_micros / 1_000_000) as u32;
        let ts_usec = (pkt.ts_micros % 1_000_000) as u32;
        let len = pkt.data.len() as u32;
        let mut rec = [0u8; RECORD_HEADER_LEN];
        rec[0..4].copy_from_slice(&ts_sec.to_le_bytes());
        rec[4..8].copy_from_slice(&ts_usec.to_le_bytes());
        rec[8..12].copy_from_slice(&len.to_le_bytes());
        rec[12..16].copy_from_slice(&len.to_le_bytes());
        self.inner.write_all(&rec)?;
        self.inner.write_all(&pkt.data)?;
        Ok(())
    }

    /// Flushes and returns the underlying writer.
    pub fn finish(mut self) -> Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Streaming pcap reader; handles both endiannesses.
pub struct PcapReader<R: Read> {
    inner: R,
    swapped: bool,
}

impl<R: Read> PcapReader<R> {
    /// Reads and validates the global header.
    pub fn new(mut inner: R) -> Result<Self> {
        let mut hdr = [0u8; GLOBAL_HEADER_LEN];
        inner.read_exact(&mut hdr)?;
        let magic = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);
        let swapped = match magic {
            MAGIC_MICROS => false,
            MAGIC_MICROS_SWAPPED => true,
            other => return Err(Error::BadMagic(other)),
        };
        Ok(PcapReader { inner, swapped })
    }

    fn read_u32(&self, bytes: [u8; 4]) -> u32 {
        if self.swapped {
            u32::from_be_bytes(bytes)
        } else {
            u32::from_le_bytes(bytes)
        }
    }

    /// Reads the next record; `Ok(None)` at clean end-of-file.
    pub fn next_record(&mut self) -> Result<Option<PcapRecord>> {
        let mut rec = [0u8; RECORD_HEADER_LEN];
        match self.inner.read_exact(&mut rec) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        let ts_sec = self.read_u32([rec[0], rec[1], rec[2], rec[3]]);
        let ts_usec = self.read_u32([rec[4], rec[5], rec[6], rec[7]]);
        let incl_len = self.read_u32([rec[8], rec[9], rec[10], rec[11]]);
        let orig_len = self.read_u32([rec[12], rec[13], rec[14], rec[15]]);
        let mut data = vec![0u8; incl_len as usize];
        self.inner.read_exact(&mut data)?;
        Ok(Some(PcapRecord {
            ts_sec,
            ts_usec,
            orig_len,
            data,
        }))
    }

    /// Collects all remaining records as [`Packet`]s.
    pub fn packets(mut self) -> Result<Vec<Packet>> {
        let mut out = Vec::new();
        while let Some(rec) = self.next_record()? {
            out.push(rec.into_packet());
        }
        Ok(out)
    }
}

/// Serializes packets to an in-memory pcap byte buffer.
pub fn to_bytes(packets: &[Packet]) -> Result<Vec<u8>> {
    let mut w = PcapWriter::new(Vec::new())?;
    for p in packets {
        w.write_packet(p)?;
    }
    w.finish()
}

/// Parses packets from an in-memory pcap byte buffer.
pub fn from_bytes(bytes: &[u8]) -> Result<Vec<Packet>> {
    PcapReader::new(bytes)?.packets()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mac::MacAddr;
    use crate::packet::PacketBuilder;
    use crate::tcp::TcpFlags;
    use std::net::Ipv4Addr;

    fn sample_packets() -> Vec<Packet> {
        let mut b = PacketBuilder::new(
            MacAddr::new(1, 2, 3, 4, 5, 6),
            MacAddr::new(6, 5, 4, 3, 2, 1),
            Ipv4Addr::new(192, 168, 10, 2),
            Ipv4Addr::new(93, 184, 216, 34),
        );
        vec![
            b.tcp(1_500_000, 5000, 443, 1, 0, TcpFlags::SYN, &[]),
            b.udp(2_250_000, 5001, 53, b"dns"),
            b.tcp(90_000_000_000, 5000, 443, 2, 1, TcpFlags::ACK, b"data"),
        ]
    }

    #[test]
    fn roundtrip() {
        let packets = sample_packets();
        let bytes = to_bytes(&packets).unwrap();
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back, packets);
    }

    #[test]
    fn global_header_layout() {
        let bytes = to_bytes(&[]).unwrap();
        assert_eq!(bytes.len(), GLOBAL_HEADER_LEN);
        assert_eq!(&bytes[0..4], &MAGIC_MICROS.to_le_bytes());
        assert_eq!(u32::from_le_bytes(bytes[20..24].try_into().unwrap()), LINKTYPE_ETHERNET);
    }

    #[test]
    fn swapped_endianness_readable() {
        let packets = sample_packets();
        let mut bytes = to_bytes(&packets).unwrap();
        // Byte-swap every header field to emulate a big-endian writer.
        bytes[0..4].copy_from_slice(&MAGIC_MICROS.to_be_bytes());
        for field in [4usize, 6] {
            bytes.swap(field, field + 1);
        }
        for field in [8usize, 12, 16, 20] {
            bytes[field..field + 4].reverse();
        }
        let mut offset = GLOBAL_HEADER_LEN;
        while offset < bytes.len() {
            for field in 0..4 {
                bytes[offset + field * 4..offset + field * 4 + 4].reverse();
            }
            let incl = u32::from_be_bytes(bytes[offset + 8..offset + 12].try_into().unwrap());
            offset += RECORD_HEADER_LEN + incl as usize;
        }
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back, packets);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = to_bytes(&[]).unwrap();
        bytes[0] = 0x00;
        assert!(matches!(from_bytes(&bytes), Err(Error::BadMagic(_))));
    }

    #[test]
    fn truncated_record_is_io_error() {
        let packets = sample_packets();
        let bytes = to_bytes(&packets).unwrap();
        let cut = &bytes[..bytes.len() - 3];
        assert!(matches!(from_bytes(cut), Err(Error::Io(_))));
    }

    #[test]
    fn timestamps_preserved_to_microsecond() {
        let packets = sample_packets();
        let bytes = to_bytes(&packets).unwrap();
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back[0].ts_micros, 1_500_000);
        assert_eq!(back[1].ts_micros, 2_250_000);
        assert_eq!(back[2].ts_micros, 90_000_000_000);
    }
}
