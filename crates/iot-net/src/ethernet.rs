//! Ethernet II framing.

use crate::error::Error;
use crate::mac::MacAddr;
use crate::Result;

/// Length of an Ethernet II header (dst + src + ethertype).
pub const HEADER_LEN: usize = 14;

/// EtherType values this substrate understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// ARP (0x0806) — present in captures but ignored by the analyses.
    Arp,
    /// IPv6 (0x86DD) — parsed for completeness; the testbeds are IPv4-only.
    Ipv6,
    /// Anything else, preserved verbatim.
    Other(u16),
}

impl From<u16> for EtherType {
    fn from(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            0x86dd => EtherType::Ipv6,
            other => EtherType::Other(other),
        }
    }
}

impl From<EtherType> for u16 {
    fn from(t: EtherType) -> u16 {
        match t {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Ipv6 => 0x86dd,
            EtherType::Other(v) => v,
        }
    }
}

/// A parsed Ethernet II frame borrowing its payload from the capture buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EthernetFrame<'a> {
    /// Destination hardware address.
    pub dst: MacAddr,
    /// Source hardware address.
    pub src: MacAddr,
    /// Payload protocol.
    pub ethertype: EtherType,
    /// Frame payload (the network-layer packet).
    pub payload: &'a [u8],
}

impl<'a> EthernetFrame<'a> {
    /// Parses a frame from raw bytes.
    pub fn parse(data: &'a [u8]) -> Result<Self> {
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated {
                layer: "ethernet",
                needed: HEADER_LEN,
                available: data.len(),
            });
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&data[0..6]);
        src.copy_from_slice(&data[6..12]);
        let ethertype = u16::from_be_bytes([data[12], data[13]]).into();
        Ok(EthernetFrame {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype,
            payload: &data[HEADER_LEN..],
        })
    }

    /// Serializes header + payload into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len());
        out.extend_from_slice(&self.dst.octets());
        out.extend_from_slice(&self.src.octets());
        out.extend_from_slice(&u16::from(self.ethertype).to_be_bytes());
        out.extend_from_slice(self.payload);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let frame = EthernetFrame {
            dst: MacAddr::BROADCAST,
            src: MacAddr::new(0, 1, 2, 3, 4, 5),
            ethertype: EtherType::Ipv4,
            payload: b"hello",
        };
        let bytes = frame.encode();
        let parsed = EthernetFrame::parse(&bytes).unwrap();
        assert_eq!(parsed, frame);
    }

    #[test]
    fn truncated_rejected() {
        assert!(matches!(
            EthernetFrame::parse(&[0u8; 13]),
            Err(Error::Truncated { layer: "ethernet", .. })
        ));
    }

    #[test]
    fn ethertype_mapping() {
        assert_eq!(EtherType::from(0x0800u16), EtherType::Ipv4);
        assert_eq!(EtherType::from(0x0806u16), EtherType::Arp);
        assert_eq!(EtherType::from(0x86ddu16), EtherType::Ipv6);
        assert_eq!(EtherType::from(0x1234u16), EtherType::Other(0x1234));
        assert_eq!(u16::from(EtherType::Other(0x1234)), 0x1234);
    }

    #[test]
    fn empty_payload_ok() {
        let frame = EthernetFrame {
            dst: MacAddr::new(1, 1, 1, 1, 1, 1),
            src: MacAddr::new(2, 2, 2, 2, 2, 2),
            ethertype: EtherType::Arp,
            payload: &[],
        };
        let parsed_bytes = frame.encode();
        assert_eq!(parsed_bytes.len(), HEADER_LEN);
        assert_eq!(EthernetFrame::parse(&parsed_bytes).unwrap().payload, &[] as &[u8]);
    }
}
