//! Composed packets: capture records, full-frame building, and full-frame
//! parsing.
//!
//! A [`Packet`] is what the simulated gateway captures: a timestamp plus the
//! raw frame bytes, exactly like a tcpdump record. [`PacketBuilder`]
//! assembles valid frames layer by layer, and [`ParsedPacket`] decodes a
//! captured frame back into typed headers.

use crate::ethernet::{EtherType, EthernetFrame};
use crate::ipv4::{protocol, Ipv4Header};
use crate::mac::MacAddr;
use crate::tcp::{TcpFlags, TcpHeader};
use crate::udp::UdpHeader;
use crate::Result;
use std::net::Ipv4Addr;

/// A captured packet: microsecond timestamp plus raw frame bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Capture time in microseconds since the simulation epoch.
    pub ts_micros: u64,
    /// Raw Ethernet frame bytes.
    pub data: Vec<u8>,
}

impl Packet {
    /// Creates a packet from raw frame bytes.
    pub fn new(ts_micros: u64, data: impl Into<Vec<u8>>) -> Self {
        Packet {
            ts_micros,
            data: data.into(),
        }
    }

    /// Capture time in (possibly fractional) seconds.
    pub fn ts_seconds(&self) -> f64 {
        self.ts_micros as f64 / 1e6
    }

    /// Total frame length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the frame is empty (never produced by the builder).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Decodes the frame into typed headers, rejecting non-IPv4 frames.
    pub fn parse(&self) -> Result<ParsedPacket<'_>> {
        ParsedPacket::parse(&self.data)
    }

    /// Decodes the frame as either IPv4 or ARP — the two frame kinds the
    /// simulated gateway captures.
    pub fn parse_frame(&self) -> Result<Frame<'_>> {
        let eth = EthernetFrame::parse(&self.data)?;
        match eth.ethertype {
            EtherType::Arp => Ok(Frame::Arp(crate::arp::ArpPacket::parse(eth.payload)?)),
            _ => Ok(Frame::Ip(ParsedPacket::parse(&self.data)?)),
        }
    }
}

/// A fully decoded frame: either an IPv4 packet or an ARP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame<'a> {
    /// IPv4 over Ethernet.
    Ip(ParsedPacket<'a>),
    /// ARP over Ethernet (LAN-internal; ignored by the analyses).
    Arp(crate::arp::ArpPacket),
}

/// Transport-layer header of a parsed packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportHeader {
    /// TCP segment header.
    Tcp(TcpHeader),
    /// UDP datagram header.
    Udp(UdpHeader),
    /// Some other IP protocol; the raw protocol number is preserved.
    Other(u8),
}

impl TransportHeader {
    /// Source port, when the transport has ports.
    pub fn src_port(&self) -> Option<u16> {
        match self {
            TransportHeader::Tcp(t) => Some(t.src_port),
            TransportHeader::Udp(u) => Some(u.src_port),
            TransportHeader::Other(_) => None,
        }
    }

    /// Destination port, when the transport has ports.
    pub fn dst_port(&self) -> Option<u16> {
        match self {
            TransportHeader::Tcp(t) => Some(t.dst_port),
            TransportHeader::Udp(u) => Some(u.dst_port),
            TransportHeader::Other(_) => None,
        }
    }

    /// True for TCP.
    pub fn is_tcp(&self) -> bool {
        matches!(self, TransportHeader::Tcp(_))
    }
}

/// A fully decoded Ethernet/IPv4/{TCP,UDP} packet borrowing from the frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedPacket<'a> {
    /// Source hardware address.
    pub src_mac: MacAddr,
    /// Destination hardware address.
    pub dst_mac: MacAddr,
    /// IPv4 header.
    pub ip: Ipv4Header,
    /// Transport header.
    pub transport: TransportHeader,
    /// Application payload bytes.
    pub payload: &'a [u8],
}

impl<'a> ParsedPacket<'a> {
    /// Parses a raw Ethernet frame carrying IPv4.
    pub fn parse(frame: &'a [u8]) -> Result<Self> {
        let eth = EthernetFrame::parse(frame)?;
        if eth.ethertype != EtherType::Ipv4 {
            return Err(crate::Error::Unsupported {
                layer: "ethernet",
                what: format!("ethertype {:?}", eth.ethertype),
            });
        }
        let (ip, ip_payload) = Ipv4Header::parse(eth.payload)?;
        let (transport, payload) = match ip.protocol {
            protocol::TCP => {
                let (tcp, p) = TcpHeader::parse(ip_payload, ip.src, ip.dst)?;
                (TransportHeader::Tcp(tcp), p)
            }
            protocol::UDP => {
                let (udp, p) = UdpHeader::parse(ip_payload, ip.src, ip.dst)?;
                (TransportHeader::Udp(udp), p)
            }
            other => (TransportHeader::Other(other), ip_payload),
        };
        Ok(ParsedPacket {
            src_mac: eth.src,
            dst_mac: eth.dst,
            ip,
            transport,
            payload,
        })
    }
}

/// Builder assembling valid full frames for the traffic generator.
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    identification: u16,
    ttl: u8,
}

impl PacketBuilder {
    /// Starts a builder for frames between the given endpoints.
    pub fn new(src_mac: MacAddr, dst_mac: MacAddr, src_ip: Ipv4Addr, dst_ip: Ipv4Addr) -> Self {
        PacketBuilder {
            src_mac,
            dst_mac,
            src_ip,
            dst_ip,
            identification: 1,
            ttl: 64,
        }
    }

    /// Overrides the IP TTL (the simulator lowers it for frames that have
    /// crossed the VPN tunnel).
    pub fn ttl(mut self, ttl: u8) -> Self {
        self.ttl = ttl;
        self
    }

    /// Builds a TCP segment frame.
    pub fn tcp(
        &mut self,
        ts_micros: u64,
        src_port: u16,
        dst_port: u16,
        seq: u32,
        ack: u32,
        flags: TcpFlags,
        payload: &[u8],
    ) -> Packet {
        let tcp = TcpHeader {
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            window: 65535,
        };
        let segment = tcp.encode(payload, self.src_ip, self.dst_ip);
        self.frame(ts_micros, protocol::TCP, &segment)
    }

    /// Builds a UDP datagram frame.
    pub fn udp(&mut self, ts_micros: u64, src_port: u16, dst_port: u16, payload: &[u8]) -> Packet {
        let udp = UdpHeader { src_port, dst_port };
        let datagram = udp.encode(payload, self.src_ip, self.dst_ip);
        self.frame(ts_micros, protocol::UDP, &datagram)
    }

    fn frame(&mut self, ts_micros: u64, proto: u8, ip_payload: &[u8]) -> Packet {
        let mut ip = Ipv4Header::for_payload(self.src_ip, self.dst_ip, proto, ip_payload.len());
        ip.identification = self.identification;
        ip.ttl = self.ttl;
        self.identification = self.identification.wrapping_add(1);
        let ip_bytes = ip.encode();
        let mut frame = Vec::with_capacity(14 + ip_bytes.len() + ip_payload.len());
        let eth = EthernetFrame {
            dst: self.dst_mac,
            src: self.src_mac,
            ethertype: EtherType::Ipv4,
            payload: &[],
        };
        frame.extend_from_slice(&eth.encode());
        frame.extend_from_slice(&ip_bytes);
        frame.extend_from_slice(ip_payload);
        Packet::new(ts_micros, frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn builder() -> PacketBuilder {
        PacketBuilder::new(
            MacAddr::new(0xa4, 0xcf, 0x12, 0, 0, 1),
            MacAddr::new(0x00, 0x16, 0x3e, 0, 0, 2),
            Ipv4Addr::new(192, 168, 10, 21),
            Ipv4Addr::new(52, 84, 9, 9),
        )
    }

    #[test]
    fn tcp_frame_roundtrip() {
        let mut b = builder();
        let pkt = b.tcp(
            1_000_000,
            49152,
            443,
            7,
            0,
            TcpFlags::PSH | TcpFlags::ACK,
            b"application bytes",
        );
        let parsed = pkt.parse().unwrap();
        assert_eq!(parsed.src_mac, MacAddr::new(0xa4, 0xcf, 0x12, 0, 0, 1));
        assert_eq!(parsed.ip.dst, Ipv4Addr::new(52, 84, 9, 9));
        assert_eq!(parsed.transport.dst_port(), Some(443));
        assert!(parsed.transport.is_tcp());
        assert_eq!(parsed.payload, b"application bytes");
        assert_eq!(pkt.ts_seconds(), 1.0);
    }

    #[test]
    fn udp_frame_roundtrip() {
        let mut b = builder();
        let pkt = b.udp(42, 5353, 53, b"query");
        let parsed = pkt.parse().unwrap();
        assert_eq!(parsed.transport.src_port(), Some(5353));
        assert_eq!(parsed.payload, b"query");
    }

    #[test]
    fn identification_increments() {
        let mut b = builder();
        let p1 = b.udp(0, 1, 2, b"a");
        let p2 = b.udp(1, 1, 2, b"a");
        let id1 = p1.parse().unwrap().ip.identification;
        let id2 = p2.parse().unwrap().ip.identification;
        assert_eq!(id2, id1 + 1);
    }

    #[test]
    fn ttl_override() {
        let mut b = builder().ttl(50);
        let pkt = b.udp(0, 1, 2, b"x");
        assert_eq!(pkt.parse().unwrap().ip.ttl, 50);
    }

    #[test]
    fn non_ip_frame_rejected_by_parse() {
        let eth = EthernetFrame {
            dst: MacAddr::BROADCAST,
            src: MacAddr::new(1, 2, 3, 4, 5, 6),
            ethertype: EtherType::Arp,
            payload: &[0u8; 28],
        };
        let pkt = Packet::new(0, eth.encode());
        assert!(pkt.parse().is_err());
    }
}
