//! IPv4 header encoding and parsing (RFC 791), with header checksum.

use crate::checksum::checksum;
use crate::error::Error;
use crate::Result;
use std::net::Ipv4Addr;

/// Minimum (and, for this substrate's generator, only) IPv4 header length.
pub const MIN_HEADER_LEN: usize = 20;

/// IP protocol numbers used by the testbed.
pub mod protocol {
    /// ICMP.
    pub const ICMP: u8 = 1;
    /// TCP.
    pub const TCP: u8 = 6;
    /// UDP.
    pub const UDP: u8 = 17;
}

/// A decoded IPv4 header. Options are preserved as raw bytes when parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Differentiated services byte.
    pub dscp_ecn: u8,
    /// Total length of header + payload in bytes.
    pub total_len: u16,
    /// Identification field (used by the generator as a per-flow counter).
    pub identification: u16,
    /// Flags (3 bits) and fragment offset (13 bits) packed as on the wire.
    pub flags_fragment: u16,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol number (see [`protocol`]).
    pub protocol: u8,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
}

impl Ipv4Header {
    /// Builds a header for a payload of `payload_len` bytes with the
    /// don't-fragment bit set and a default TTL of 64.
    pub fn for_payload(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, payload_len: usize) -> Self {
        Ipv4Header {
            dscp_ecn: 0,
            total_len: (MIN_HEADER_LEN + payload_len) as u16,
            identification: 0,
            flags_fragment: 0x4000, // DF
            ttl: 64,
            protocol,
            src,
            dst,
        }
    }

    /// Parses a header and returns it together with the payload slice.
    ///
    /// The header checksum is verified; captures produced by the simulator
    /// always carry valid checksums, so a mismatch indicates corruption.
    pub fn parse(data: &[u8]) -> Result<(Self, &[u8])> {
        if data.len() < MIN_HEADER_LEN {
            return Err(Error::Truncated {
                layer: "ipv4",
                needed: MIN_HEADER_LEN,
                available: data.len(),
            });
        }
        let version = data[0] >> 4;
        if version != 4 {
            return Err(Error::Unsupported {
                layer: "ipv4",
                what: format!("version {version}"),
            });
        }
        let ihl = usize::from(data[0] & 0x0f) * 4;
        if ihl < MIN_HEADER_LEN || data.len() < ihl {
            return Err(Error::Truncated {
                layer: "ipv4",
                needed: ihl.max(MIN_HEADER_LEN),
                available: data.len(),
            });
        }
        let computed = checksum(&data[..ihl]);
        if computed != 0 {
            let found = u16::from_be_bytes([data[10], data[11]]);
            return Err(Error::BadChecksum {
                layer: "ipv4",
                found,
                computed,
            });
        }
        let total_len = u16::from_be_bytes([data[2], data[3]]);
        if usize::from(total_len) > data.len() || usize::from(total_len) < ihl {
            return Err(Error::LengthMismatch {
                layer: "ipv4",
                claimed: total_len.into(),
                actual: data.len(),
            });
        }
        let header = Ipv4Header {
            dscp_ecn: data[1],
            total_len,
            identification: u16::from_be_bytes([data[4], data[5]]),
            flags_fragment: u16::from_be_bytes([data[6], data[7]]),
            ttl: data[8],
            protocol: data[9],
            src: Ipv4Addr::new(data[12], data[13], data[14], data[15]),
            dst: Ipv4Addr::new(data[16], data[17], data[18], data[19]),
        };
        Ok((header, &data[ihl..usize::from(total_len)]))
    }

    /// Serializes the header (20 bytes, no options) with a freshly computed
    /// checksum.
    pub fn encode(&self) -> [u8; MIN_HEADER_LEN] {
        let mut out = [0u8; MIN_HEADER_LEN];
        out[0] = 0x45; // version 4, IHL 5
        out[1] = self.dscp_ecn;
        out[2..4].copy_from_slice(&self.total_len.to_be_bytes());
        out[4..6].copy_from_slice(&self.identification.to_be_bytes());
        out[6..8].copy_from_slice(&self.flags_fragment.to_be_bytes());
        out[8] = self.ttl;
        out[9] = self.protocol;
        // checksum (bytes 10-11) computed over the header with field zeroed
        out[12..16].copy_from_slice(&self.src.octets());
        out[16..20].copy_from_slice(&self.dst.octets());
        let ck = checksum(&out);
        out[10..12].copy_from_slice(&ck.to_be_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Header {
        Ipv4Header::for_payload(
            Ipv4Addr::new(192, 168, 10, 5),
            Ipv4Addr::new(52, 1, 2, 3),
            protocol::TCP,
            100,
        )
    }

    #[test]
    fn roundtrip_with_payload() {
        let h = sample();
        let mut wire = h.encode().to_vec();
        wire.extend_from_slice(&vec![0xaa; 100]);
        let (parsed, payload) = Ipv4Header::parse(&wire).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(payload.len(), 100);
        assert!(payload.iter().all(|&b| b == 0xaa));
    }

    #[test]
    fn corrupted_checksum_detected() {
        let h = sample();
        let mut wire = h.encode().to_vec();
        wire.extend_from_slice(&vec![0u8; 100]);
        wire[8] ^= 0xff; // flip TTL, invalidating the checksum
        assert!(matches!(
            Ipv4Header::parse(&wire),
            Err(Error::BadChecksum { layer: "ipv4", .. })
        ));
    }

    #[test]
    fn total_len_trims_trailing_bytes() {
        // Ethernet minimum-frame padding appears after the IP datagram;
        // parse must honor total_len, not the buffer length.
        let h = Ipv4Header::for_payload(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            protocol::UDP,
            4,
        );
        let mut wire = h.encode().to_vec();
        wire.extend_from_slice(&[1, 2, 3, 4]);
        wire.extend_from_slice(&[0u8; 22]); // padding
        let (_, payload) = Ipv4Header::parse(&wire).unwrap();
        assert_eq!(payload, &[1, 2, 3, 4]);
    }

    #[test]
    fn rejects_v6() {
        let mut wire = sample().encode().to_vec();
        wire[0] = 0x65;
        assert!(matches!(
            Ipv4Header::parse(&wire),
            Err(Error::Unsupported { layer: "ipv4", .. })
        ));
    }

    #[test]
    fn rejects_short_buffer() {
        assert!(Ipv4Header::parse(&[0x45; 10]).is_err());
    }

    #[test]
    fn rejects_bad_total_len() {
        let mut h = sample();
        h.total_len = 10; // < header length
        let mut wire = h.encode().to_vec();
        wire.extend_from_slice(&[0u8; 100]);
        assert!(matches!(
            Ipv4Header::parse(&wire),
            Err(Error::LengthMismatch { layer: "ipv4", .. })
        ));
    }
}
