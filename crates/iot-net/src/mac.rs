//! EUI-48 (MAC) addresses.
//!
//! The Mon(IoT)r testbed separates captured traffic per device by MAC
//! address, and the paper's PII analysis specifically searches for MAC
//! addresses leaked in plaintext payloads (in several textual encodings).
//! [`MacAddr`] therefore supports both wire encoding and the textual forms
//! the leak detector must recognize.

use std::fmt;
use std::str::FromStr;

/// An EUI-48 hardware address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// Builds an address from its six octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8, e: u8, f: u8) -> Self {
        MacAddr([a, b, c, d, e, f])
    }

    /// Returns the raw octets.
    pub const fn octets(&self) -> [u8; 6] {
        self.0
    }

    /// The 3-byte Organizationally Unique Identifier prefix, which
    /// identifies the device vendor (footnote 3 of the paper: a MAC exposes
    /// the vendor and sometimes the device model).
    pub const fn oui(&self) -> [u8; 3] {
        [self.0[0], self.0[1], self.0[2]]
    }

    /// True for the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// True if the group (multicast) bit is set.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// True if the locally-administered bit is set.
    pub fn is_local(&self) -> bool {
        self.0[0] & 0x02 != 0
    }

    /// Canonical lowercase colon-separated form, e.g. `a4:cf:12:00:01:02`.
    pub fn to_colon_string(&self) -> String {
        self.to_string()
    }

    /// Hyphen-separated uppercase form, e.g. `A4-CF-12-00-01-02` (seen in
    /// Windows-style device registrations).
    pub fn to_hyphen_string(&self) -> String {
        self.0
            .iter()
            .map(|b| format!("{b:02X}"))
            .collect::<Vec<_>>()
            .join("-")
    }

    /// Bare hex form without separators, e.g. `a4cf12000102` (the form most
    /// commonly observed in IoT device registration payloads).
    pub fn to_bare_string(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Error returned when parsing a textual MAC address fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMacError(pub String);

impl fmt::Display for ParseMacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid MAC address: {:?}", self.0)
    }
}

impl std::error::Error for ParseMacError {}

impl FromStr for MacAddr {
    type Err = ParseMacError;

    /// Accepts colon-separated, hyphen-separated, or bare 12-hex-digit forms,
    /// case-insensitively.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let hex: String = s.chars().filter(|c| *c != ':' && *c != '-').collect();
        if hex.len() != 12 || !hex.chars().all(|c| c.is_ascii_hexdigit()) {
            return Err(ParseMacError(s.to_string()));
        }
        // Separators, if present, must be consistent and in the right places.
        if s.len() == 17 {
            let sep = s.as_bytes()[2];
            if sep != b':' && sep != b'-' {
                return Err(ParseMacError(s.to_string()));
            }
            for (i, b) in s.bytes().enumerate() {
                if i % 3 == 2 && b != sep {
                    return Err(ParseMacError(s.to_string()));
                }
            }
        } else if s.len() != 12 {
            return Err(ParseMacError(s.to_string()));
        }
        let mut out = [0u8; 6];
        for (i, chunk) in hex.as_bytes().chunks(2).enumerate() {
            let byte = std::str::from_utf8(chunk)
                .ok()
                .and_then(|h| u8::from_str_radix(h, 16).ok())
                .ok_or_else(|| ParseMacError(s.to_string()))?;
            out[i] = byte;
        }
        Ok(MacAddr(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: MacAddr = MacAddr::new(0xa4, 0xcf, 0x12, 0x00, 0x01, 0x02);

    #[test]
    fn display_is_lower_colon() {
        assert_eq!(SAMPLE.to_string(), "a4:cf:12:00:01:02");
    }

    #[test]
    fn hyphen_form_is_upper() {
        assert_eq!(SAMPLE.to_hyphen_string(), "A4-CF-12-00-01-02");
    }

    #[test]
    fn bare_form() {
        assert_eq!(SAMPLE.to_bare_string(), "a4cf12000102");
    }

    #[test]
    fn parse_all_three_forms() {
        for s in ["a4:cf:12:00:01:02", "A4-CF-12-00-01-02", "a4cf12000102"] {
            assert_eq!(s.parse::<MacAddr>().unwrap(), SAMPLE, "form {s}");
        }
    }

    #[test]
    fn parse_rejects_bad_input() {
        for s in ["", "a4:cf:12", "zz:cf:12:00:01:02", "a4cf1200010", "a4:cf-12:00:01:02"] {
            assert!(s.parse::<MacAddr>().is_err(), "should reject {s:?}");
        }
    }

    #[test]
    fn broadcast_and_flags() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!SAMPLE.is_broadcast());
        assert!(!SAMPLE.is_multicast());
        assert!(MacAddr::new(0x02, 0, 0, 0, 0, 1).is_local());
    }

    #[test]
    fn oui_prefix() {
        assert_eq!(SAMPLE.oui(), [0xa4, 0xcf, 0x12]);
    }
}
