//! The Internet checksum (RFC 1071) used by IPv4, TCP, and UDP.

use std::net::Ipv4Addr;

/// Incremental one's-complement sum accumulator.
///
/// Feed it header/payload slices (and, for TCP/UDP, the pseudo-header) and
/// call [`Checksum::finish`] to obtain the 16-bit checksum value.
#[derive(Debug, Default, Clone, Copy)]
pub struct Checksum {
    sum: u32,
    /// Carries a dangling odd byte between `push` calls.
    pending: Option<u8>,
}

impl Checksum {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a slice of bytes to the running sum.
    pub fn push(&mut self, data: &[u8]) {
        let mut iter = data.iter().copied();
        if let Some(hi) = self.pending.take() {
            if let Some(lo) = iter.next() {
                self.add_word(u16::from_be_bytes([hi, lo]));
            } else {
                self.pending = Some(hi);
                return;
            }
        }
        let mut bytes = iter;
        loop {
            match (bytes.next(), bytes.next()) {
                (Some(hi), Some(lo)) => self.add_word(u16::from_be_bytes([hi, lo])),
                (Some(hi), None) => {
                    self.pending = Some(hi);
                    break;
                }
                _ => break,
            }
        }
    }

    /// Adds a single big-endian 16-bit word.
    pub fn push_u16(&mut self, word: u16) {
        debug_assert!(self.pending.is_none(), "push_u16 on odd boundary");
        self.add_word(word);
    }

    /// Adds the TCP/UDP pseudo-header for the given addresses, protocol, and
    /// transport segment length.
    pub fn push_pseudo_header(&mut self, src: Ipv4Addr, dst: Ipv4Addr, proto: u8, len: u16) {
        self.push(&src.octets());
        self.push(&dst.octets());
        self.push_u16(u16::from(proto));
        self.push_u16(len);
    }

    fn add_word(&mut self, word: u16) {
        self.sum += u32::from(word);
    }

    /// Folds carries and returns the one's-complement checksum.
    pub fn finish(mut self) -> u16 {
        if let Some(hi) = self.pending.take() {
            self.add_word(u16::from_be_bytes([hi, 0]));
        }
        let mut sum = self.sum;
        while sum >> 16 != 0 {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        !(sum as u16)
    }
}

/// One-shot checksum over a single buffer.
pub fn checksum(data: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.push(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 1071 §3 worked example.
    #[test]
    fn rfc1071_example() {
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        // Sum = 0x0001 + 0xf203 + 0xf4f5 + 0xf6f7 = 0x2ddf0 -> fold -> 0xddf2
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        // Checksum of [0xab] == checksum of [0xab, 0x00].
        assert_eq!(checksum(&[0xab]), checksum(&[0xab, 0x00]));
    }

    #[test]
    fn split_push_equals_single_push() {
        let data: Vec<u8> = (0u8..=200).collect();
        for split in [0usize, 1, 3, 100, 199, 201] {
            let mut c = Checksum::new();
            c.push(&data[..split]);
            c.push(&data[split..]);
            assert_eq!(c.finish(), checksum(&data), "split at {split}");
        }
    }

    #[test]
    fn verifying_includes_checksum_yields_zero() {
        // A buffer whose checksum field is filled in sums to 0 when the
        // checksum is included — the standard verification procedure.
        let mut data = vec![0x45u8, 0x00, 0x00, 0x1c, 0x00, 0x00, 0x00, 0x00, 0x40, 0x11, 0, 0];
        let ck = checksum(&data);
        data[10..12].copy_from_slice(&ck.to_be_bytes());
        assert_eq!(checksum(&data), 0);
    }

    #[test]
    fn pseudo_header_changes_sum() {
        let mut a = Checksum::new();
        a.push_pseudo_header(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2), 6, 20);
        let mut b = Checksum::new();
        b.push_pseudo_header(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 3), 6, 20);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn empty_is_all_ones() {
        assert_eq!(checksum(&[]), 0xffff);
    }
}
