//! Flow reconstruction: grouping captured packets into bidirectional
//! 5-tuple flows, the unit of the paper's destination and encryption
//! analyses.
//!
//! A flow is keyed from the *device's* perspective (local endpoint = the IoT
//! device, remote endpoint = the Internet destination). Each flow tracks
//! byte/packet counts per direction plus a bounded prefix of the application
//! payload in each direction, which downstream analyses use for protocol
//! identification, entropy measurement, and PII scanning.

use crate::packet::{ParsedPacket, TransportHeader};
use std::net::Ipv4Addr;

/// Transport protocol of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FlowProto {
    /// TCP flow.
    Tcp,
    /// UDP flow.
    Udp,
}

/// Direction of a packet relative to the IoT device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Device → Internet.
    Outbound,
    /// Internet → device.
    Inbound,
}

/// Bidirectional flow key from the device's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey {
    /// Device-side address.
    pub local_ip: Ipv4Addr,
    /// Device-side port.
    pub local_port: u16,
    /// Remote (destination) address.
    pub remote_ip: Ipv4Addr,
    /// Remote port — the service port, e.g. 443.
    pub remote_port: u16,
    /// Transport protocol.
    pub proto: FlowProto,
}

/// Default number of payload prefix bytes retained per direction.
pub const DEFAULT_PAYLOAD_CAP: usize = 8192;

/// Accumulated state for one flow.
#[derive(Debug, Clone)]
pub struct Flow {
    /// The flow's key.
    pub key: FlowKey,
    /// Timestamp of the first packet (µs).
    pub first_ts: u64,
    /// Timestamp of the last packet (µs).
    pub last_ts: u64,
    /// Packets sent by the device.
    pub packets_out: u64,
    /// Packets received by the device.
    pub packets_in: u64,
    /// Application payload bytes sent by the device.
    pub bytes_out: u64,
    /// Application payload bytes received by the device.
    pub bytes_in: u64,
    /// Prefix of the outbound payload stream (capped).
    pub payload_out: Vec<u8>,
    /// Prefix of the inbound payload stream (capped).
    pub payload_in: Vec<u8>,
}

impl Flow {
    fn new(key: FlowKey, ts: u64) -> Self {
        Flow {
            key,
            first_ts: ts,
            last_ts: ts,
            packets_out: 0,
            packets_in: 0,
            bytes_out: 0,
            bytes_in: 0,
            payload_out: Vec::new(),
            payload_in: Vec::new(),
        }
    }

    /// Total application payload bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_out + self.bytes_in
    }

    /// Total packets in both directions.
    pub fn total_packets(&self) -> u64 {
        self.packets_out + self.packets_in
    }

    /// Flow duration in seconds.
    pub fn duration_secs(&self) -> f64 {
        (self.last_ts.saturating_sub(self.first_ts)) as f64 / 1e6
    }

    fn observe(&mut self, dir: Direction, ts: u64, payload: &[u8], cap: usize) {
        self.last_ts = self.last_ts.max(ts);
        self.first_ts = self.first_ts.min(ts);
        let (pkts, bytes, buf) = match dir {
            Direction::Outbound => (&mut self.packets_out, &mut self.bytes_out, &mut self.payload_out),
            Direction::Inbound => (&mut self.packets_in, &mut self.bytes_in, &mut self.payload_in),
        };
        *pkts += 1;
        *bytes += payload.len() as u64;
        let room = cap.saturating_sub(buf.len());
        if room > 0 {
            buf.extend_from_slice(&payload[..payload.len().min(room)]);
        }
    }
}

impl FlowKey {
    /// Packs the 5-tuple into one `u128`, field-ordered so that comparing
    /// packed keys is exactly [`FlowKey`]'s derived lexicographic `Ord`
    /// (local ip, local port, remote ip, remote port, proto) — the sort
    /// in [`FlowTable::into_flows`] depends on this equivalence.
    pub fn packed(&self) -> u128 {
        (u128::from(u32::from(self.local_ip)) << 72)
            | (u128::from(self.local_port) << 56)
            | (u128::from(u32::from(self.remote_ip)) << 24)
            | (u128::from(self.remote_port) << 8)
            | (self.proto as u128)
    }
}

/// Fibonacci hash of a packed key: the two halves are folded, multiplied
/// by 2^64/φ, and the *top* bits index the slot array (the low bits of a
/// Fibonacci product are poorly mixed).
fn hash_packed(key: u128) -> u64 {
    let folded = (key as u64) ^ ((key >> 64) as u64).rotate_left(31);
    folded.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Groups parsed packets into flows.
///
/// Internally an arena of [`Flow`]s plus an open-addressing index of
/// packed 5-tuple keys: lookups are one multiply, a masked probe over a
/// `u32` slot array (`flow index + 1`, `0` = empty), and a single `u128`
/// compare — no per-lookup hashing of a multi-field struct and no
/// per-entry heap box like `HashMap<FlowKey, Flow>` had. Iteration order
/// over the arena is insertion order (first-packet order), which is
/// deterministic; [`FlowTable::into_flows`] still sorts explicitly.
#[derive(Debug)]
pub struct FlowTable {
    /// `flow index + 1` per slot; 0 marks an empty slot. Power-of-two
    /// sized, linear probing, grown at ¾ load.
    slots: Vec<u32>,
    /// Packed key per arena entry, parallel to `flows`.
    keys: Vec<u128>,
    /// Flow arena, in first-observation order.
    flows: Vec<Flow>,
    local_net: (Ipv4Addr, u8),
    payload_cap: usize,
}

const INITIAL_SLOTS: usize = 64;

impl FlowTable {
    /// Creates a table for devices living inside `local_net` (address,
    /// prefix length) — the testbed's private IoT subnet.
    pub fn new(local_net: Ipv4Addr, prefix_len: u8) -> Self {
        FlowTable {
            slots: vec![0; INITIAL_SLOTS],
            keys: Vec::new(),
            flows: Vec::new(),
            local_net: (local_net, prefix_len),
            payload_cap: DEFAULT_PAYLOAD_CAP,
        }
    }

    /// Slot index of `packed`'s probe start.
    fn probe_start(&self, packed: u128) -> usize {
        // Top bits of the Fibonacci product, reduced to the table size.
        let shift = 64 - self.slots.len().trailing_zeros();
        (hash_packed(packed) >> shift) as usize
    }

    /// Finds the arena index for `packed`, inserting a new flow (created
    /// by `make`) on first sight. Grows the slot array at ¾ load.
    fn index_of(&mut self, packed: u128, make: impl FnOnce() -> Flow) -> usize {
        if (self.flows.len() + 1) * 4 >= self.slots.len() * 3 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = self.probe_start(packed);
        loop {
            match self.slots[i] {
                0 => {
                    let idx = self.flows.len();
                    self.slots[i] = idx as u32 + 1;
                    self.keys.push(packed);
                    self.flows.push(make());
                    return idx;
                }
                s => {
                    let idx = (s - 1) as usize;
                    if self.keys[idx] == packed {
                        return idx;
                    }
                    i = (i + 1) & mask;
                }
            }
        }
    }

    fn grow(&mut self) {
        let new_len = self.slots.len() * 2;
        self.slots.clear();
        self.slots.resize(new_len, 0);
        let shift = 64 - new_len.trailing_zeros();
        let mask = new_len - 1;
        for (idx, &key) in self.keys.iter().enumerate() {
            let mut i = (hash_packed(key) >> shift) as usize;
            while self.slots[i] != 0 {
                i = (i + 1) & mask;
            }
            self.slots[i] = idx as u32 + 1;
        }
    }

    /// Overrides the per-direction payload retention cap.
    pub fn with_payload_cap(mut self, cap: usize) -> Self {
        self.payload_cap = cap;
        self
    }

    fn is_local(&self, ip: Ipv4Addr) -> bool {
        let (net, len) = self.local_net;
        if len == 0 {
            return true;
        }
        let mask = u32::MAX << (32 - u32::from(len));
        (u32::from(ip) & mask) == (u32::from(net) & mask)
    }

    /// Feeds one parsed packet into the table. Returns the direction, or
    /// `None` for LAN-internal / non-TCP-UDP traffic, which the paper's
    /// analyses exclude (footnote 1 in §4.1).
    pub fn observe(&mut self, pkt: &ParsedPacket<'_>, ts_micros: u64) -> Option<Direction> {
        let (proto, src_port, dst_port) = match &pkt.transport {
            TransportHeader::Tcp(t) => (FlowProto::Tcp, t.src_port, t.dst_port),
            TransportHeader::Udp(u) => (FlowProto::Udp, u.src_port, u.dst_port),
            TransportHeader::Other(_) => return None,
        };
        let src_local = self.is_local(pkt.ip.src);
        let dst_local = self.is_local(pkt.ip.dst);
        let (dir, key) = match (src_local, dst_local) {
            (true, false) => (
                Direction::Outbound,
                FlowKey {
                    local_ip: pkt.ip.src,
                    local_port: src_port,
                    remote_ip: pkt.ip.dst,
                    remote_port: dst_port,
                    proto,
                },
            ),
            (false, true) => (
                Direction::Inbound,
                FlowKey {
                    local_ip: pkt.ip.dst,
                    local_port: dst_port,
                    remote_ip: pkt.ip.src,
                    remote_port: src_port,
                    proto,
                },
            ),
            // LAN-internal or transit traffic: outside the privacy analysis.
            _ => return None,
        };
        let cap = self.payload_cap;
        let idx = self.index_of(key.packed(), || Flow::new(key, ts_micros));
        self.flows[idx].observe(dir, ts_micros, pkt.payload, cap);
        Some(dir)
    }

    /// Number of flows seen so far.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True when no flows have been observed.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Iterates over flows in first-observation order.
    pub fn iter(&self) -> impl Iterator<Item = &Flow> {
        self.flows.iter()
    }

    /// Consumes the table, returning flows sorted by first-packet time.
    pub fn into_flows(self) -> Vec<Flow> {
        let mut flows = self.flows;
        flows.sort_by_key(|f| (f.first_ts, f.key));
        flows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mac::MacAddr;
    use crate::packet::PacketBuilder;
    use crate::tcp::TcpFlags;

    const DEV_IP: Ipv4Addr = Ipv4Addr::new(192, 168, 10, 31);
    const CLOUD_IP: Ipv4Addr = Ipv4Addr::new(52, 84, 3, 3);
    const DEV_MAC: MacAddr = MacAddr::new(0xa4, 0xcf, 0x12, 0, 0, 9);
    const GW_MAC: MacAddr = MacAddr::new(0, 0x16, 0x3e, 0, 0, 1);

    fn table() -> FlowTable {
        FlowTable::new(Ipv4Addr::new(192, 168, 10, 0), 24)
    }

    #[test]
    fn bidirectional_packets_join_one_flow() {
        let mut t = table();
        let mut out_b = PacketBuilder::new(DEV_MAC, GW_MAC, DEV_IP, CLOUD_IP);
        let mut in_b = PacketBuilder::new(GW_MAC, DEV_MAC, CLOUD_IP, DEV_IP);
        let p1 = out_b.tcp(0, 40000, 443, 0, 0, TcpFlags::PSH | TcpFlags::ACK, b"req");
        let p2 = in_b.tcp(5_000, 443, 40000, 0, 3, TcpFlags::PSH | TcpFlags::ACK, b"resp!");
        assert_eq!(t.observe(&p1.parse().unwrap(), p1.ts_micros), Some(Direction::Outbound));
        assert_eq!(t.observe(&p2.parse().unwrap(), p2.ts_micros), Some(Direction::Inbound));
        assert_eq!(t.len(), 1);
        let flow = t.iter().next().unwrap();
        assert_eq!(flow.bytes_out, 3);
        assert_eq!(flow.bytes_in, 5);
        assert_eq!(flow.payload_out, b"req");
        assert_eq!(flow.payload_in, b"resp!");
        assert_eq!(flow.key.remote_port, 443);
        assert!((flow.duration_secs() - 0.005).abs() < 1e-9);
    }

    #[test]
    fn lan_internal_traffic_excluded() {
        let mut t = table();
        let mut b = PacketBuilder::new(
            DEV_MAC,
            GW_MAC,
            DEV_IP,
            Ipv4Addr::new(192, 168, 10, 99),
        );
        let p = b.udp(0, 5000, 5000, b"lan");
        assert_eq!(t.observe(&p.parse().unwrap(), 0), None);
        assert!(t.is_empty());
    }

    #[test]
    fn distinct_ports_distinct_flows() {
        let mut t = table();
        let mut b = PacketBuilder::new(DEV_MAC, GW_MAC, DEV_IP, CLOUD_IP);
        let p1 = b.udp(0, 50000, 53, b"q1");
        let p2 = b.udp(1, 50001, 53, b"q2");
        t.observe(&p1.parse().unwrap(), 0);
        t.observe(&p2.parse().unwrap(), 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn payload_cap_respected() {
        let mut t = table().with_payload_cap(4);
        let mut b = PacketBuilder::new(DEV_MAC, GW_MAC, DEV_IP, CLOUD_IP);
        let p1 = b.udp(0, 50000, 9999, b"abcdef");
        t.observe(&p1.parse().unwrap(), 0);
        let flow = t.iter().next().unwrap();
        assert_eq!(flow.payload_out, b"abcd");
        assert_eq!(flow.bytes_out, 6, "byte counter must not be capped");
    }

    #[test]
    fn into_flows_sorted_by_time() {
        let mut t = table();
        let mut b = PacketBuilder::new(DEV_MAC, GW_MAC, DEV_IP, CLOUD_IP);
        let late = b.udp(9_000_000, 50001, 53, b"late");
        let early = b.udp(1_000_000, 50002, 53, b"early");
        t.observe(&late.parse().unwrap(), late.ts_micros);
        t.observe(&early.parse().unwrap(), early.ts_micros);
        let flows = t.into_flows();
        assert_eq!(flows[0].payload_out, b"early");
        assert_eq!(flows[1].payload_out, b"late");
    }

    #[test]
    fn tcp_and_udp_same_ports_are_distinct() {
        let mut t = table();
        let mut b = PacketBuilder::new(DEV_MAC, GW_MAC, DEV_IP, CLOUD_IP);
        let p1 = b.udp(0, 40000, 443, b"quic-ish");
        let p2 = b.tcp(1, 40000, 443, 0, 0, TcpFlags::SYN, &[]);
        t.observe(&p1.parse().unwrap(), 0);
        t.observe(&p2.parse().unwrap(), 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn packed_key_order_matches_flowkey_ord() {
        // into_flows ties on first_ts break by FlowKey's derived Ord; the
        // packed u128 must induce the identical total order.
        let mut rng = iot_core::rng::StdRng::seed_from_u64(0xF10F_F10F);
        let mut keys = Vec::new();
        for _ in 0..512 {
            keys.push(FlowKey {
                local_ip: Ipv4Addr::from(rng.gen::<u32>() & 0xffff00ff),
                local_port: rng.gen::<u16>() & 0x0fff,
                remote_ip: Ipv4Addr::from(rng.gen::<u32>() & 0x00ffffff),
                remote_port: rng.gen::<u16>(),
                proto: if rng.gen_bool(0.5) { FlowProto::Tcp } else { FlowProto::Udp },
            });
        }
        for a in &keys {
            for b in &keys {
                assert_eq!(a.cmp(b), a.packed().cmp(&b.packed()), "{a:?} vs {b:?}");
            }
        }
    }

    /// Property test (tentpole contract): the packed-key open-addressing
    /// table is observationally identical to a naive `HashMap<FlowKey,
    /// Flow>` across ≥64 seeded packet streams, including streams whose
    /// 5-tuples are crafted to collide heavily in the probe space (tiny
    /// IP/port ranges → many keys landing in the same buckets).
    #[test]
    fn packed_table_matches_hashmap_reference_seeded() {
        use std::collections::HashMap;
        for case in 0..64u64 {
            let mut rng = iot_core::rng::StdRng::seed_from_u64(0xAB1E ^ (case << 8));
            // Collision-heavy on even cases: 2 remote IPs × 8 ports etc.
            let tight = case % 2 == 0;
            let mut t = table();
            let mut reference: HashMap<FlowKey, Flow> = HashMap::new();
            for _ in 0..rng.gen_range(1usize..400) {
                let (src, dst, sport, dport, out) = if rng.gen_bool(0.5) {
                    // Outbound.
                    let remote = if tight {
                        Ipv4Addr::new(52, 84, 3, rng.gen_range(3u8..5))
                    } else {
                        Ipv4Addr::from(rng.gen::<u32>() | 0x0100_0000)
                    };
                    let sport = if tight { 40000 + rng.gen::<u16>() % 8 } else { rng.gen() };
                    (DEV_IP, remote, sport, 443, true)
                } else {
                    let remote = Ipv4Addr::new(52, 84, 3, rng.gen_range(3u8..5));
                    (remote, DEV_IP, 443, 40000 + rng.gen::<u16>() % 8, false)
                };
                let mut payload = vec![0u8; rng.gen_range(0usize..64)];
                rng.fill(&mut payload);
                let ts = u64::from(rng.gen::<u32>());
                let (a_mac, b_mac) = if out { (DEV_MAC, GW_MAC) } else { (GW_MAC, DEV_MAC) };
                let mut b = PacketBuilder::new(a_mac, b_mac, src, dst);
                let raw = b.udp(ts, sport, dport, &payload);
                let parsed = raw.parse().unwrap();
                let dir = t.observe(&parsed, ts);
                // Reference: the pre-optimization HashMap logic, verbatim.
                let (key, rdir) = if src == DEV_IP {
                    (
                        FlowKey {
                            local_ip: src,
                            local_port: sport,
                            remote_ip: dst,
                            remote_port: dport,
                            proto: FlowProto::Udp,
                        },
                        Direction::Outbound,
                    )
                } else {
                    (
                        FlowKey {
                            local_ip: dst,
                            local_port: dport,
                            remote_ip: src,
                            remote_port: sport,
                            proto: FlowProto::Udp,
                        },
                        Direction::Inbound,
                    )
                };
                assert_eq!(dir, Some(rdir));
                reference
                    .entry(key)
                    .or_insert_with(|| Flow::new(key, ts))
                    .observe(rdir, ts, &payload, DEFAULT_PAYLOAD_CAP);
            }
            assert_eq!(t.len(), reference.len(), "case {case}");
            let mut expected: Vec<Flow> = reference.into_values().collect();
            expected.sort_by_key(|f| (f.first_ts, f.key));
            let actual = t.into_flows();
            for (a, e) in actual.iter().zip(&expected) {
                assert_eq!(a.key, e.key, "case {case}");
                assert_eq!(a.first_ts, e.first_ts);
                assert_eq!(a.last_ts, e.last_ts);
                assert_eq!((a.packets_out, a.packets_in), (e.packets_out, e.packets_in));
                assert_eq!((a.bytes_out, a.bytes_in), (e.bytes_out, e.bytes_in));
                assert_eq!(a.payload_out, e.payload_out);
                assert_eq!(a.payload_in, e.payload_in);
            }
        }
    }
}
