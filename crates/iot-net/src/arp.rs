//! ARP (RFC 826) over Ethernet for IPv4.
//!
//! Real gateway captures are full of ARP: devices announce themselves with
//! gratuitous ARP after association and resolve the gateway before their
//! first IP packet. The analyses ignore ARP (it never leaves the LAN), but
//! the capture layer must carry and skip it faithfully — a pipeline that
//! chokes on non-IP frames would not survive a real pcap.

use crate::error::Error;
use crate::mac::MacAddr;
use crate::Result;
use std::net::Ipv4Addr;

/// ARP operation codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArpOp {
    /// Who-has request (1).
    Request,
    /// Is-at reply (2).
    Reply,
}

/// An ARP packet for IPv4-over-Ethernet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArpPacket {
    /// Operation.
    pub op: ArpOp,
    /// Sender hardware address.
    pub sender_mac: MacAddr,
    /// Sender protocol address.
    pub sender_ip: Ipv4Addr,
    /// Target hardware address (zero in requests).
    pub target_mac: MacAddr,
    /// Target protocol address.
    pub target_ip: Ipv4Addr,
}

/// Wire length of an IPv4-over-Ethernet ARP packet.
pub const PACKET_LEN: usize = 28;

impl ArpPacket {
    /// A who-has request from `sender` for `target_ip`.
    pub fn request(sender_mac: MacAddr, sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> Self {
        ArpPacket {
            op: ArpOp::Request,
            sender_mac,
            sender_ip,
            target_mac: MacAddr([0; 6]),
            target_ip,
        }
    }

    /// A gratuitous announcement: the sender claims its own address
    /// (devices broadcast this right after DHCP completes).
    pub fn gratuitous(mac: MacAddr, ip: Ipv4Addr) -> Self {
        ArpPacket {
            op: ArpOp::Request,
            sender_mac: mac,
            sender_ip: ip,
            target_mac: MacAddr([0; 6]),
            target_ip: ip,
        }
    }

    /// An is-at reply answering `request`.
    pub fn reply_to(request: &ArpPacket, mac: MacAddr) -> Self {
        ArpPacket {
            op: ArpOp::Reply,
            sender_mac: mac,
            sender_ip: request.target_ip,
            target_mac: request.sender_mac,
            target_ip: request.sender_ip,
        }
    }

    /// True for gratuitous announcements (sender ip == target ip).
    pub fn is_gratuitous(&self) -> bool {
        self.op == ArpOp::Request && self.sender_ip == self.target_ip
    }

    /// Serializes to the 28-byte wire format.
    pub fn encode(&self) -> [u8; PACKET_LEN] {
        let mut out = [0u8; PACKET_LEN];
        out[0..2].copy_from_slice(&1u16.to_be_bytes()); // htype: ethernet
        out[2..4].copy_from_slice(&0x0800u16.to_be_bytes()); // ptype: ipv4
        out[4] = 6; // hlen
        out[5] = 4; // plen
        let op: u16 = match self.op {
            ArpOp::Request => 1,
            ArpOp::Reply => 2,
        };
        out[6..8].copy_from_slice(&op.to_be_bytes());
        out[8..14].copy_from_slice(&self.sender_mac.octets());
        out[14..18].copy_from_slice(&self.sender_ip.octets());
        out[18..24].copy_from_slice(&self.target_mac.octets());
        out[24..28].copy_from_slice(&self.target_ip.octets());
        out
    }

    /// Parses an ARP packet.
    pub fn parse(data: &[u8]) -> Result<Self> {
        if data.len() < PACKET_LEN {
            return Err(Error::Truncated {
                layer: "arp",
                needed: PACKET_LEN,
                available: data.len(),
            });
        }
        let htype = u16::from_be_bytes([data[0], data[1]]);
        let ptype = u16::from_be_bytes([data[2], data[3]]);
        if htype != 1 || ptype != 0x0800 || data[4] != 6 || data[5] != 4 {
            return Err(Error::Unsupported {
                layer: "arp",
                what: format!("htype={htype} ptype=0x{ptype:04x}"),
            });
        }
        let op = match u16::from_be_bytes([data[6], data[7]]) {
            1 => ArpOp::Request,
            2 => ArpOp::Reply,
            other => {
                return Err(Error::Unsupported {
                    layer: "arp",
                    what: format!("op {other}"),
                })
            }
        };
        let mac = |at: usize| {
            let mut m = [0u8; 6];
            m.copy_from_slice(&data[at..at + 6]);
            MacAddr(m)
        };
        let ip = |at: usize| Ipv4Addr::new(data[at], data[at + 1], data[at + 2], data[at + 3]);
        Ok(ArpPacket {
            op,
            sender_mac: mac(8),
            sender_ip: ip(14),
            target_mac: mac(18),
            target_ip: ip(24),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAC_A: MacAddr = MacAddr::new(0xa4, 0xcf, 0x12, 0, 0, 1);
    const MAC_GW: MacAddr = MacAddr::new(0x00, 0x16, 0x3e, 0, 0, 1);
    const IP_A: Ipv4Addr = Ipv4Addr::new(192, 168, 10, 20);
    const IP_GW: Ipv4Addr = Ipv4Addr::new(192, 168, 10, 1);

    #[test]
    fn request_reply_roundtrip() {
        let req = ArpPacket::request(MAC_A, IP_A, IP_GW);
        let parsed = ArpPacket::parse(&req.encode()).unwrap();
        assert_eq!(parsed, req);
        assert!(!parsed.is_gratuitous());

        let reply = ArpPacket::reply_to(&parsed, MAC_GW);
        assert_eq!(reply.op, ArpOp::Reply);
        assert_eq!(reply.sender_ip, IP_GW);
        assert_eq!(reply.target_mac, MAC_A);
        let parsed_reply = ArpPacket::parse(&reply.encode()).unwrap();
        assert_eq!(parsed_reply, reply);
    }

    #[test]
    fn gratuitous_detected() {
        let g = ArpPacket::gratuitous(MAC_A, IP_A);
        assert!(g.is_gratuitous());
        assert!(ArpPacket::parse(&g.encode()).unwrap().is_gratuitous());
    }

    #[test]
    fn rejects_non_ipv4_arp() {
        let mut bytes = ArpPacket::gratuitous(MAC_A, IP_A).encode();
        bytes[3] = 0xdd; // ptype
        assert!(ArpPacket::parse(&bytes).is_err());
        assert!(ArpPacket::parse(&[0u8; 10]).is_err());
    }
}
