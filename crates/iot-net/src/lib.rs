//! # iot-net
//!
//! Packet-level network substrate for the `intl-iot` reproduction of
//! *Information Exposure From Consumer IoT Devices* (IMC 2019).
//!
//! The paper's testbeds capture every frame crossing a gateway with tcpdump.
//! This crate provides the equivalent byte-level machinery, built from
//! scratch in the style of typed wire representations:
//!
//! * [`mac::MacAddr`] — EUI-48 hardware addresses with vendor (OUI) prefixes.
//! * [`ethernet`], [`ipv4`], [`tcp`], [`udp`] — header encode/decode with
//!   real Internet checksums.
//! * [`packet`] — composed packets: build ([`packet::PacketBuilder`]) and
//!   parse ([`packet::ParsedPacket`]) full frames.
//! * [`pcap`] — classic libpcap capture-file reader/writer, so simulated
//!   captures are byte-compatible with tcpdump output; a lenient salvage
//!   mode ([`pcap::from_bytes_lenient`]) resynchronizes past corrupt
//!   records and torn tails instead of aborting.
//! * [`flow`] — 5-tuple flow keys and per-flow payload reassembly, the unit
//!   of the paper's destination and encryption analyses.
//!
//! All parsing is bounds-checked and returns typed [`Error`]s; there is no
//! `unsafe` code in this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arp;
pub mod checksum;
pub mod error;
pub mod ethernet;
pub mod flow;
pub mod ipv4;
pub mod mac;
pub mod packet;
pub mod pcap;
pub mod tcp;
pub mod udp;

pub use arp::{ArpOp, ArpPacket};
pub use error::Error;
pub use ethernet::{EtherType, EthernetFrame};
pub use flow::{Direction, Flow, FlowKey, FlowTable};
pub use ipv4::Ipv4Header;
pub use mac::MacAddr;
pub use packet::{Frame, Packet, PacketBuilder, ParsedPacket, TransportHeader};
pub use pcap::{PcapReader, PcapRecord, PcapWriter, SalvageStats};
pub use tcp::{TcpFlags, TcpHeader};
pub use udp::UdpHeader;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;
