//! UDP header encoding and parsing with pseudo-header checksum.

use crate::checksum::Checksum;
use crate::error::Error;
use crate::Result;
use std::net::Ipv4Addr;

/// UDP header length.
pub const HEADER_LEN: usize = 8;

/// A decoded UDP header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
}

impl UdpHeader {
    /// Parses a datagram, verifying length and checksum, and returns the
    /// header with the payload slice.
    pub fn parse<'a>(data: &'a [u8], src: Ipv4Addr, dst: Ipv4Addr) -> Result<(Self, &'a [u8])> {
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated {
                layer: "udp",
                needed: HEADER_LEN,
                available: data.len(),
            });
        }
        let length = usize::from(u16::from_be_bytes([data[4], data[5]]));
        if length < HEADER_LEN || length > data.len() {
            return Err(Error::LengthMismatch {
                layer: "udp",
                claimed: length,
                actual: data.len(),
            });
        }
        let datagram = &data[..length];
        let found = u16::from_be_bytes([data[6], data[7]]);
        if found != 0 {
            // Checksum 0 means "not computed" in UDP-over-IPv4.
            let mut ck = Checksum::new();
            ck.push_pseudo_header(src, dst, crate::ipv4::protocol::UDP, length as u16);
            ck.push(datagram);
            let computed = ck.finish();
            if computed != 0 {
                return Err(Error::BadChecksum {
                    layer: "udp",
                    found,
                    computed,
                });
            }
        }
        Ok((
            UdpHeader {
                src_port: u16::from_be_bytes([data[0], data[1]]),
                dst_port: u16::from_be_bytes([data[2], data[3]]),
            },
            &datagram[HEADER_LEN..],
        ))
    }

    /// Serializes header + payload with the checksum computed.
    pub fn encode(&self, payload: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Vec<u8> {
        let length = (HEADER_LEN + payload.len()) as u16;
        let mut out = Vec::with_capacity(usize::from(length));
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&length.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(payload);
        let mut ck = Checksum::new();
        ck.push_pseudo_header(src, dst, crate::ipv4::protocol::UDP, length);
        ck.push(&out);
        let mut sum = ck.finish();
        if sum == 0 {
            // RFC 768: a computed zero checksum is transmitted as all-ones.
            sum = 0xffff;
        }
        out[6..8].copy_from_slice(&sum.to_be_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(192, 168, 10, 8);
    const DST: Ipv4Addr = Ipv4Addr::new(8, 8, 8, 8);

    #[test]
    fn roundtrip() {
        let h = UdpHeader {
            src_port: 53124,
            dst_port: 53,
        };
        let wire = h.encode(b"dns query bytes", SRC, DST);
        let (parsed, payload) = UdpHeader::parse(&wire, SRC, DST).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(payload, b"dns query bytes");
    }

    #[test]
    fn zero_checksum_skips_verification() {
        let h = UdpHeader {
            src_port: 123,
            dst_port: 123,
        };
        let mut wire = h.encode(b"ntp", SRC, DST);
        wire[6] = 0;
        wire[7] = 0;
        assert!(UdpHeader::parse(&wire, SRC, DST).is_ok());
    }

    #[test]
    fn corrupted_detected() {
        let h = UdpHeader {
            src_port: 1,
            dst_port: 2,
        };
        let mut wire = h.encode(b"payload", SRC, DST);
        wire[9] ^= 0x80;
        assert!(matches!(
            UdpHeader::parse(&wire, SRC, DST),
            Err(Error::BadChecksum { layer: "udp", .. })
        ));
    }

    #[test]
    fn length_field_honored_with_trailing_padding() {
        let h = UdpHeader {
            src_port: 9,
            dst_port: 10,
        };
        let mut wire = h.encode(b"abcd", SRC, DST);
        wire.extend_from_slice(&[0u8; 16]);
        let (_, payload) = UdpHeader::parse(&wire, SRC, DST).unwrap();
        assert_eq!(payload, b"abcd");
    }

    #[test]
    fn bad_length_rejected() {
        let h = UdpHeader {
            src_port: 9,
            dst_port: 10,
        };
        let mut wire = h.encode(b"abcd", SRC, DST);
        wire[4] = 0xff;
        wire[5] = 0xff;
        assert!(matches!(
            UdpHeader::parse(&wire, SRC, DST),
            Err(Error::LengthMismatch { layer: "udp", .. })
        ));
    }
}
