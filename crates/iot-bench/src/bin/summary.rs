//! §9 headline numbers: the conclusion's aggregate statistics.

use iot_analysis::report::TextTable;
use iot_testbed::lab::LabSite;

fn main() {
    let scale = iot_bench::scale();
    iot_obs::progress!("building corpus at {scale:?} scale…");
    let corpus = iot_bench::build_corpus(iot_bench::campaign_config(scale));

    let mut table = TextTable::new("§9 headline statistics", &["Statistic", "Ours", "Paper"]);
    let (with_nfp, total_devices) = corpus.destinations.devices_with_non_first_party();
    table.row(vec![
        "devices with ≥1 non-first-party destination".into(),
        format!("{with_nfp}/{total_devices}"),
        "72/81".into(),
    ]);
    table.row(vec![
        "% destinations non-first party (US)".into(),
        format!(
            "{:.2}%",
            corpus.destinations.non_first_party_fraction(LabSite::Us) * 100.0
        ),
        "57.45%".into(),
    ]);
    table.row(vec![
        "% destinations non-first party (UK)".into(),
        format!(
            "{:.2}%",
            corpus.destinations.non_first_party_fraction(LabSite::Uk) * 100.0
        ),
        "50.27%".into(),
    ]);
    table.row(vec![
        "% devices contacting out-of-region destinations (US)".into(),
        format!(
            "{:.1}%",
            corpus.destinations.out_of_region_device_fraction(LabSite::Us) * 100.0
        ),
        "56%".into(),
    ]);
    table.row(vec![
        "% devices contacting out-of-region destinations (UK)".into(),
        format!(
            "{:.1}%",
            corpus.destinations.out_of_region_device_fraction(LabSite::Uk) * 100.0
        ),
        "83.8%".into(),
    ]);
    table.row(vec![
        "PII findings in plaintext traffic".into(),
        corpus.pii.len().to_string(),
        "limited but notable (MACs, geolocation, device names)".into(),
    ]);
    let non_first_pii = corpus
        .pii
        .iter()
        .filter(|f| f.party.map(|p| p.is_non_first()).unwrap_or(true))
        .count();
    table.row(vec![
        "PII findings exposed to non-first parties".into(),
        non_first_pii.to_string(),
        "e.g. Samsung Fridge MAC → EC2; Magichome MAC → Alibaba".into(),
    ]);
    table.row(vec![
        "experiments ingested".into(),
        corpus.experiments.to_string(),
        "34,586 controlled".into(),
    ]);
    iot_bench::emit("summary", &table, "see §9 of the paper for the reference values");
}
