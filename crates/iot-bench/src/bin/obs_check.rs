//! Observability smoke + overhead gate, run by `verify.sh`.
//!
//! Usage:
//!
//! ```text
//! obs_check <obs_run.json> <fresh_bench.json> [committed_bench.json] \
//!           [obs_trace.json] [obs_metrics.prom]
//! ```
//!
//! Asserts that the run report written by an `IOT_OBS=1` bench run is
//! well-formed and non-trivial:
//!
//! 1. the report parses as JSON (through the in-tree parser);
//! 2. the stage counters (`experiments`, `flows`, `bytes`, `packets`)
//!    are non-zero;
//! 3. per-stage spans and per-worker gauges are present;
//! 4. the instrumentation overhead measured by the fresh bench run
//!    (`obs_overhead_ratio`) stays under 5%, with a small absolute
//!    tolerance so sub-millisecond noise on tiny grids cannot fail the
//!    gate spuriously;
//! 5. the allocator accounting is live and cheap: the bench's `alloc`
//!    block carries non-zero heap traffic, the counting-on run
//!    reproduced the baseline report byte for byte
//!    (`alloc_report_identical`), `alloc_overhead_ratio` stays under the
//!    same 5% ceiling, the report attributes heap bytes to the ingest
//!    span and carries the end-of-run allocator gauges, and the
//!    Prometheus exposition includes the per-span memory series.
//!
//! The optional third argument is the committed benchmark trajectory;
//! its comparison is warn-only because absolute times from a different
//! machine say nothing reliable about this one.
//!
//! The optional fourth/fifth arguments are the exporter artifacts
//! written by `bench_pipeline`; when given, the Chrome trace must parse
//! through the in-tree JSON parser with a non-empty per-worker
//! `traceEvents` array, the Prometheus exposition must carry `# TYPE`
//! lines and histogram `_bucket`/`_sum`/`_count` series, the run report
//! must have recorded flight-recorder events, and the benchmark's
//! `trace_deterministic_identical` gate must have held.
//!
//! Exits non-zero on any hard failure, so `verify.sh` can gate on it.

use iot_core::json::Json;
use std::process::ExitCode;

/// Hard ceiling on obs-on / obs-off median ratio.
const MAX_OVERHEAD_RATIO: f64 = 1.05;
/// Absolute slack: ratios above the ceiling still pass when the median
/// delta is below this, so timer jitter on very fast runs cannot flake.
const ABS_TOLERANCE_MS: f64 = 75.0;

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn counter(report: &Json, name: &str) -> u64 {
    report
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

fn median_ms(bench: &Json, section: &str) -> Option<f64> {
    bench.get(section)?.get("median_ms")?.as_f64()
}

/// Exporter-artifact assertions (folded-in `obs_export_check`): the
/// Chrome trace and Prometheus exposition written by `bench_pipeline`
/// must be well-formed, and the run must actually have recorded events.
fn check_exports(
    report: &Json,
    bench: &Json,
    trace_path: &str,
    prom_path: &str,
) -> Result<(), String> {
    let events_recorded = report
        .get("events")
        .and_then(|e| e.get("recorded"))
        .and_then(Json::as_u64)
        .ok_or_else(|| "obs report: no events.recorded field".to_string())?;
    if events_recorded == 0 {
        return Err("obs report: zero flight-recorder events recorded".to_string());
    }
    println!("obs_check: {events_recorded} flight-recorder events");

    if !bench
        .get("trace_deterministic_identical")
        .and_then(Json::as_bool)
        .unwrap_or(false)
    {
        // Only an overflowed ring excuses divergence; bench_pipeline
        // already exits non-zero otherwise, but belt and braces here.
        let overwritten = bench
            .get("events_overwritten")
            .and_then(Json::as_u64)
            .unwrap_or(0);
        if overwritten == 0 {
            return Err("bench: deterministic trace diverged across drivers".to_string());
        }
        println!(
            "obs_check: deterministic-trace gate skipped ({overwritten} events overwritten)"
        );
    }

    let trace = load(trace_path)?;
    let events = trace
        .get("traceEvents")
        .and_then(Json::items)
        .ok_or_else(|| format!("{trace_path}: no traceEvents array"))?;
    if events.is_empty() {
        return Err(format!("{trace_path}: traceEvents is empty"));
    }
    let tracks: std::collections::BTreeSet<u64> = events
        .iter()
        .filter_map(|e| e.get("tid").and_then(Json::as_u64))
        .collect();
    if tracks.is_empty() {
        return Err(format!("{trace_path}: events carry no tid tracks"));
    }
    println!(
        "obs_check: trace has {} events on {} worker track(s)",
        events.len(),
        tracks.len()
    );

    let prom = std::fs::read_to_string(prom_path).map_err(|e| format!("{prom_path}: {e}"))?;
    for needle in [
        "# TYPE iot_experiments_total counter",
        "# TYPE iot_span_duration_ns histogram",
        "# TYPE iot_span_alloc_bytes_total counter",
        "iot_span_allocs_total{",
        "_bucket{",
        "_sum ",
        "_count ",
    ] {
        if !prom.contains(needle) {
            return Err(format!("{prom_path}: missing {needle:?}"));
        }
    }
    println!("obs_check: prometheus exposition OK ({} bytes)", prom.len());
    Ok(())
}

fn check(
    obs_path: &str,
    bench_path: &str,
    committed_path: Option<&str>,
    export_paths: Option<(&str, &str)>,
) -> Result<(), String> {
    let report = load(obs_path)?;
    let bench = load(bench_path)?;

    // 2. Stage counters must show the pipeline actually processed data.
    for name in ["experiments", "packets", "flows", "bytes"] {
        let v = counter(&report, name);
        if v == 0 {
            return Err(format!("{obs_path}: counter {name:?} is zero or missing"));
        }
        println!("obs_check: counter {name} = {v}");
    }

    // 3. Spans and worker gauges present.
    let spans = report
        .get("spans")
        .and_then(Json::members)
        .ok_or_else(|| format!("{obs_path}: no spans section"))?;
    if spans.is_empty() {
        return Err(format!("{obs_path}: spans section is empty"));
    }
    for required in ["ingest", "shard"] {
        if !spans.iter().any(|(k, _)| k == required) {
            return Err(format!("{obs_path}: missing span {required:?}"));
        }
    }
    println!("obs_check: {} span paths", spans.len());
    let gauges = report
        .get("gauges")
        .and_then(Json::members)
        .ok_or_else(|| format!("{obs_path}: no gauges section"))?;
    if gauges.iter().all(|(k, _)| k != "workers") {
        return Err(format!("{obs_path}: missing gauge \"workers\""));
    }
    let worker_gauges = gauges
        .iter()
        .filter(|(k, _)| k.starts_with("worker.") && k.ends_with(".experiments"))
        .count();
    if worker_gauges == 0 {
        return Err(format!("{obs_path}: no per-worker shard-size gauges"));
    }
    println!("obs_check: {worker_gauges} per-worker gauge(s)");
    // bench_pipeline keeps heap counting on for the instrumented runs,
    // so the report must carry per-span heap attribution and the
    // end-of-run allocator gauges.
    let ingest_alloc = spans
        .iter()
        .find(|(k, _)| k == "ingest")
        .and_then(|(_, s)| s.get("alloc_bytes"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    if ingest_alloc == 0 {
        return Err(format!("{obs_path}: ingest span has no alloc_bytes attribution"));
    }
    if gauges.iter().all(|(k, _)| k != "alloc.high_water_bytes") {
        return Err(format!("{obs_path}: missing gauge \"alloc.high_water_bytes\""));
    }
    println!("obs_check: ingest span charged {ingest_alloc} heap bytes");

    // 4. Overhead gate on the fresh in-process measurement.
    let ratio = bench
        .get("obs_overhead_ratio")
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{bench_path}: no obs_overhead_ratio"))?;
    // Newer bench outputs measure overhead on interleaved pairs and
    // report the paired baseline separately; older ones only have the
    // block-measured serial section.
    let base = median_ms(&bench, "serial_obs_baseline")
        .or_else(|| median_ms(&bench, "serial"))
        .ok_or_else(|| format!("{bench_path}: no serial median"))?;
    let obs = median_ms(&bench, "serial_obs")
        .ok_or_else(|| format!("{bench_path}: no serial_obs median"))?;
    let delta = obs - base;
    println!(
        "obs_check: overhead ratio {ratio:.4} (serial {base:.1} ms -> obs {obs:.1} ms, \
         delta {delta:+.1} ms)"
    );
    if ratio > MAX_OVERHEAD_RATIO && delta > ABS_TOLERANCE_MS {
        return Err(format!(
            "observability overhead {ratio:.4}x exceeds {MAX_OVERHEAD_RATIO}x \
             (delta {delta:.1} ms > {ABS_TOLERANCE_MS} ms tolerance)"
        ));
    }
    if !bench
        .get("obs_report_identical")
        .and_then(Json::as_bool)
        .unwrap_or(false)
    {
        return Err(format!(
            "{bench_path}: instrumented pipeline report diverged from baseline"
        ));
    }

    // 5. Allocator accounting: the counting-on run must have measured
    // real heap traffic, reproduced the baseline report byte for byte,
    // and cost under the same overhead ceiling as the span layer.
    let alloc = bench
        .get("alloc")
        .ok_or_else(|| format!("{bench_path}: no alloc block"))?;
    for field in ["bytes_total", "allocs_total", "high_water_bytes"] {
        let v = alloc.get(field).and_then(Json::as_u64).unwrap_or(0);
        if v == 0 {
            return Err(format!("{bench_path}: alloc.{field} is zero or missing"));
        }
    }
    let allocs_per_exp = alloc
        .get("allocs_per_experiment")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    println!(
        "obs_check: alloc {} bytes / {} allocs per campaign ({allocs_per_exp:.1} \
         allocs/experiment), high-water {} bytes",
        alloc.get("bytes_total").and_then(Json::as_u64).unwrap_or(0),
        alloc.get("allocs_total").and_then(Json::as_u64).unwrap_or(0),
        alloc.get("high_water_bytes").and_then(Json::as_u64).unwrap_or(0),
    );
    if !bench
        .get("alloc_report_identical")
        .and_then(Json::as_bool)
        .unwrap_or(false)
    {
        return Err(format!(
            "{bench_path}: allocator-counted pipeline report diverged from baseline"
        ));
    }
    let alloc_ratio = bench
        .get("alloc_overhead_ratio")
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{bench_path}: no alloc_overhead_ratio"))?;
    let alloc_base = median_ms(&bench, "serial_alloc_baseline")
        .ok_or_else(|| format!("{bench_path}: no serial_alloc_baseline median"))?;
    let alloc_on = median_ms(&bench, "serial_alloc")
        .ok_or_else(|| format!("{bench_path}: no serial_alloc median"))?;
    let alloc_delta = alloc_on - alloc_base;
    println!(
        "obs_check: alloc overhead ratio {alloc_ratio:.4} (serial {alloc_base:.1} ms -> \
         counting {alloc_on:.1} ms, delta {alloc_delta:+.1} ms)"
    );
    if alloc_ratio > MAX_OVERHEAD_RATIO && alloc_delta > ABS_TOLERANCE_MS {
        return Err(format!(
            "allocator overhead {alloc_ratio:.4}x exceeds {MAX_OVERHEAD_RATIO}x \
             (delta {alloc_delta:.1} ms > {ABS_TOLERANCE_MS} ms tolerance)"
        ));
    }

    // Warn-only cross-check against the committed trajectory.
    if let Some(path) = committed_path {
        match load(path) {
            Ok(committed) => {
                if let (Some(now), Some(then)) =
                    (median_ms(&bench, "serial"), median_ms(&committed, "serial"))
                {
                    let rel = now / then;
                    println!(
                        "obs_check: serial median {now:.1} ms vs committed {then:.1} ms \
                         ({rel:.2}x; informational — different machines differ)"
                    );
                }
            }
            Err(e) => println!("obs_check: committed baseline unreadable ({e}); skipping"),
        }
    }

    // Exporter artifacts, when bench_pipeline wrote them.
    if let Some((trace_path, prom_path)) = export_paths {
        check_exports(&report, &bench, trace_path, prom_path)?;
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        eprintln!(
            "usage: obs_check <obs_run.json> <fresh_bench.json> \
             [committed_bench.json] [obs_trace.json] [obs_metrics.prom]"
        );
        return ExitCode::FAILURE;
    }
    let export_paths = match (args.get(3), args.get(4)) {
        (Some(t), Some(p)) => Some((t.as_str(), p.as_str())),
        _ => None,
    };
    match check(&args[0], &args[1], args.get(2).map(String::as_str), export_paths) {
        Ok(()) => {
            println!("obs_check: OK");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("obs_check: FAIL — {e}");
            ExitCode::FAILURE
        }
    }
}
