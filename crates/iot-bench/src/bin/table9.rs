//! Table 9: number of inferrable devices (macro F1 > 0.75) per category,
//! per lab / egress context.

use iot_analysis::inference::{infer_device, F1_INFERRABLE};
use iot_analysis::report::TextTable;
use iot_geodb::registry::GeoDb;
use iot_testbed::device::{Availability, Category};
use iot_testbed::lab::LabSite;
use std::collections::HashMap;

fn main() {
    let scale = iot_bench::scale();
    let config = iot_bench::inference_config(scale);
    let campaign = iot_bench::training_campaign(scale);
    let db = GeoDb::new();

    // (site, vpn, common_only) → category → inferrable count
    let mut counts: HashMap<(LabSite, bool, bool, Category), usize> = HashMap::new();
    let mut totals: HashMap<Category, usize> = HashMap::new();
    for lab in campaign.labs() {
        for device in &lab.devices {
            let spec = device.spec();
            *totals.entry(spec.category).or_default() += 1;
            for vpn in [false, true] {
                iot_obs::progress!("  inferring {} @ {:?} vpn={}", spec.name, device.site, vpn);
                let inf = infer_device(&db, &campaign, device, vpn, &config);
                if inf.report.macro_f1 > F1_INFERRABLE {
                    *counts
                        .entry((device.site, vpn, false, spec.category))
                        .or_default() += 1;
                    if spec.availability == Availability::Both {
                        *counts
                            .entry((device.site, vpn, true, spec.category))
                            .or_default() += 1;
                    }
                }
            }
        }
    }

    let contexts: [(LabSite, bool, bool); 8] = [
        (LabSite::Us, false, false),
        (LabSite::Uk, false, false),
        (LabSite::Us, false, true),
        (LabSite::Uk, false, true),
        (LabSite::Us, true, false),
        (LabSite::Uk, true, false),
        (LabSite::Us, true, true),
        (LabSite::Uk, true, true),
    ];
    let mut table = TextTable::new(
        "Table 9: inferrable devices (F1 > 0.75) by category",
        &["Category (#D)", "US", "UK", "US∩", "UK∩", "US→UK", "UK→US", "US→UK∩", "UK→US∩"],
    );
    for &category in Category::all() {
        let mut row = vec![format!(
            "{} ({})",
            category.name(),
            totals.get(&category).copied().unwrap_or(0)
        )];
        for &(site, vpn, common) in &contexts {
            row.push(
                counts
                    .get(&(site, vpn, common, category))
                    .copied()
                    .unwrap_or(0)
                    .to_string(),
            );
        }
        table.row(row);
    }
    iot_bench::emit(
        "table9",
        &table,
        "cameras have the most inferrable devices (8 US / 6 UK of 17), then TVs (5/3 of 8) \
         and audio (3/1 of 11); home automation and hubs are rarely inferrable (≤1)",
    );
}
