//! Bench-trend gate, run by `verify.sh` after `bench_pipeline`.
//!
//! Usage:
//!
//! ```text
//! bench_trend <fresh_bench.json> <history.jsonl>
//! ```
//!
//! Converts the fresh `bench_pipeline` output into a
//! [`iot_bench::history::HistoryEntry`], gates it against the recorded
//! trajectory (same host fingerprint / scale / workers only; >15% serial
//! median regression fails — see `iot_bench::history`), applies the
//! allocation ratchet (same axes plus memory fingerprint; >10% more
//! allocations per experiment than the window's leanest run fails), and
//! appends the entry to the history file regardless of verdict, so even
//! a failing run leaves its trace in the trajectory.
//!
//! Exits non-zero on a regression (or unreadable input), so `verify.sh`
//! can gate on it.

use iot_bench::history::{self, HistoryEntry};
use iot_core::json::Json;
use std::path::Path;
use std::process::ExitCode;

fn run(bench_path: &str, history_path: &str) -> Result<bool, String> {
    let text =
        std::fs::read_to_string(bench_path).map_err(|e| format!("{bench_path}: {e}"))?;
    let bench = Json::parse(&text).map_err(|e| format!("{bench_path}: {e}"))?;
    let fresh = HistoryEntry::from_bench_json(&bench)?;

    let history_path = Path::new(history_path);
    let history = history::load(history_path);
    let verdict = history::trend_gate(&history, &fresh);
    println!(
        "bench_trend: {} prior entr{} ({} comparable) in {}",
        history.len(),
        if history.len() == 1 { "y" } else { "ies" },
        verdict.baseline_runs,
        history_path.display()
    );
    println!("bench_trend: {}", verdict.summary());
    let alloc_verdict = history::alloc_trend_gate(&history, &fresh);
    println!("bench_trend: {}", alloc_verdict.summary());

    history::append(history_path, &fresh)
        .map_err(|e| format!("{}: append failed: {e}", history_path.display()))?;
    println!(
        "bench_trend: appended entry (host {}, scale {}, {} worker(s), mem {})",
        fresh.host, fresh.scale, fresh.workers, fresh.mem
    );
    Ok(verdict.pass && alloc_verdict.pass)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() != 2 {
        eprintln!("usage: bench_trend <fresh_bench.json> <history.jsonl>");
        return ExitCode::from(2);
    }
    match run(&args[0], &args[1]) {
        Ok(true) => {
            println!("bench_trend: OK");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            eprintln!(
                "bench_trend: FAIL — regression beyond {}x (time) or {}x (allocs)",
                history::MAX_REGRESSION_RATIO,
                history::MAX_ALLOC_REGRESSION_RATIO
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench_trend: FAIL — {e}");
            ExitCode::FAILURE
        }
    }
}
