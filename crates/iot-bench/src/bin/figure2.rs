//! Figure 2: traffic volume from each lab, by device category, to each
//! destination country — the Sankey diagram's underlying series.

use iot_analysis::report::TextTable;
use iot_testbed::lab::LabSite;

fn main() {
    let scale = iot_bench::scale();
    iot_obs::progress!("building corpus at {scale:?} scale…");
    let corpus = iot_bench::build_corpus(iot_bench::campaign_config(scale));

    for site in LabSite::all() {
        let flows = corpus.destinations.region_flows(site);
        let total: u64 = flows.iter().map(|(_, _, b)| b).sum();
        let mut table = TextTable::new(
            format!("Figure 2 ({} lab): bytes by category → country", site.name()),
            &["Category", "Country", "Bytes", "% of lab"],
        );
        for (category, country, bytes) in flows.iter().take(25) {
            table.row(vec![
                category.name().to_string(),
                country.code().to_string(),
                bytes.to_string(),
                format!("{:.1}", *bytes as f64 * 100.0 / total as f64),
            ]);
        }
        iot_bench::emit(
            &format!("figure2_{}", site.name().to_lowercase()),
            &table,
            "most traffic terminates in the US for BOTH labs; China receives most of the \
             overseas share (Alibaba-hosted devices); UK devices contact fewer countries",
        );
        // Headline per-country rollup.
        let mut per_country: std::collections::BTreeMap<&str, u64> = Default::default();
        for (_, country, bytes) in &flows {
            *per_country.entry(country.code()).or_default() += bytes;
        }
        let mut rollup: Vec<_> = per_country.into_iter().collect();
        rollup.sort_by(|a, b| b.1.cmp(&a.1));
        let summary: Vec<String> = rollup
            .iter()
            .take(7)
            .map(|(c, b)| format!("{c}:{:.1}%", *b as f64 * 100.0 / total as f64))
            .collect();
        println!("{} lab top destination countries: {}\n", site.name(), summary.join(" "));
    }
}
