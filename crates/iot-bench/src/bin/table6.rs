//! Table 6: per-category percentage of bytes sent unencrypted / encrypted
//! / unknown across labs and VPN egress.

use iot_analysis::report::{pct, TextTable};
use iot_entropy::EncryptionClass;
use iot_testbed::device::Category;
use iot_testbed::lab::LabSite;

fn main() {
    let scale = iot_bench::scale();
    iot_obs::progress!("building corpus at {scale:?} scale…");
    let corpus = iot_bench::build_corpus(iot_bench::campaign_config(scale));

    let contexts: [(LabSite, bool, bool); 8] = [
        (LabSite::Us, false, false),
        (LabSite::Uk, false, false),
        (LabSite::Us, false, true),
        (LabSite::Uk, false, true),
        (LabSite::Us, true, false),
        (LabSite::Uk, true, false),
        (LabSite::Us, true, true),
        (LabSite::Uk, true, true),
    ];
    let headers = [
        "Enc", "Category", "US", "UK", "US∩", "UK∩", "US→UK", "UK→US", "US→UK∩", "UK→US∩",
    ];
    let mut table = TextTable::new("Table 6: percent of bytes per category", &headers);
    for (class, sym) in [
        (EncryptionClass::LikelyUnencrypted, "x"),
        (EncryptionClass::LikelyEncrypted, "enc"),
        (EncryptionClass::Unknown, "?"),
    ] {
        for &category in Category::all() {
            let mut row = vec![sym.to_string(), category.name().to_string()];
            for &(site, vpn, common) in &contexts {
                row.push(pct(corpus.encryption.category_percent(
                    site, vpn, common, category, class,
                )));
            }
            table.row(row);
        }
    }
    iot_bench::emit(
        "table6",
        &table,
        "cameras expose the largest unencrypted share (≈11% US, 10% UK, driven by \
         Microseven/Zmodo/spy cameras); audio devices are >60% encrypted; hubs and \
         appliances are mostly unknown (proprietary protocols)",
    );
}
