//! Table 10: number of devices whose activities in each activity group are
//! reliably inferrable (per-activity F1 > 0.75).

use iot_analysis::inference::{infer_device, F1_INFERRABLE};
use iot_analysis::report::TextTable;
use iot_geodb::registry::GeoDb;
use iot_testbed::device::ActivityKind;
use iot_testbed::lab::LabSite;
use std::collections::HashMap;

fn main() {
    let scale = iot_bench::scale();
    let config = iot_bench::inference_config(scale);
    let campaign = iot_bench::training_campaign(scale);
    let db = GeoDb::new();

    let kinds = [
        ActivityKind::Power,
        ActivityKind::Voice,
        ActivityKind::Video,
        ActivityKind::OnOff,
        ActivityKind::Movement,
        ActivityKind::Other,
    ];
    // (site, vpn, common, kind) → count of devices with that kind inferrable
    let mut counts: HashMap<(LabSite, bool, bool, ActivityKind), usize> = HashMap::new();
    let mut denominators: HashMap<ActivityKind, usize> = HashMap::new();
    for lab in campaign.labs() {
        for device in &lab.devices {
            for vpn in [false, true] {
                iot_obs::progress!("  inferring {} @ {:?} vpn={}", device.spec().name, device.site, vpn);
                let inf = infer_device(&db, &campaign, device, vpn, &config);
                if !vpn {
                    for kind in inf.present_activity_kinds() {
                        *denominators.entry(kind).or_default() += 1;
                    }
                }
                let common = device.spec().availability
                    == iot_testbed::device::Availability::Both;
                for kind in inf.inferrable_activity_kinds(F1_INFERRABLE) {
                    *counts.entry((device.site, vpn, false, kind)).or_default() += 1;
                    if common {
                        *counts.entry((device.site, vpn, true, kind)).or_default() += 1;
                    }
                }
            }
        }
    }

    let contexts: [(LabSite, bool, bool); 8] = [
        (LabSite::Us, false, false),
        (LabSite::Uk, false, false),
        (LabSite::Us, false, true),
        (LabSite::Uk, false, true),
        (LabSite::Us, true, false),
        (LabSite::Uk, true, false),
        (LabSite::Us, true, true),
        (LabSite::Uk, true, true),
    ];
    let mut table = TextTable::new(
        "Table 10: inferrable activities (F1 > 0.75) by activity group",
        &["Activity (#D)", "US", "UK", "US∩", "UK∩", "US→UK", "UK→US", "US→UK∩", "UK→US∩"],
    );
    // Denominators counted once per device across both labs (no VPN).
    for kind in kinds {
        let mut row = vec![format!(
            "{} ({})",
            kind.name(),
            denominators.get(&kind).copied().unwrap_or(0)
        )];
        for &(site, vpn, common) in &contexts {
            row.push(
                counts
                    .get(&(site, vpn, common, kind))
                    .copied()
                    .unwrap_or(0)
                    .to_string(),
            );
        }
        table.row(row);
    }
    iot_bench::emit(
        "table10",
        &table,
        "power is the most inferrable activity (41 US / 30 UK of 75), then voice (10/6 of \
         17) and video (11/7 of 19); on/off is hard (9/5 of 45)",
    );
}
