//! §5.1 calibration: entropy of known-content payload families, mirroring
//! the paper's measurements with 14 cipher suites, fernet, plaintext, and
//! phone video.

use iot_analysis::report::TextTable;
use iot_entropy::calibration::{run, CIPHER_SUITE_RUNS};

fn main() {
    let report = run(0xCA11B, CIPHER_SUITE_RUNS);
    let mut table = TextTable::new(
        "§5.1 entropy calibration",
        &["Family", "H mean", "σ", "min", "max", "paper mean"],
    );
    for fam in &report.families {
        table.row(vec![
            fam.family.to_string(),
            format!("{:.3}", fam.stats.mean),
            format!("{:.3}", fam.stats.stddev),
            format!("{:.3}", fam.stats.min),
            format!("{:.3}", fam.stats.max),
            format!("{:.3}", fam.paper_mean),
        ]);
    }
    iot_bench::emit(
        "entropy_calibration",
        &table,
        "TLS H=0.85 (0.80–0.87); fernet H=0.73 (0.67–0.75); plaintext telemetry H=0.25 \
         (0.12–0.39); webpage H=0.55 (0.35–0.62); media H=0.873 — thresholds 0.4/0.8 \
         leave fernet and webpages undetermined, motivating the conservative ? class",
    );
}
