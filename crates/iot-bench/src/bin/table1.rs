//! Table 1: the device inventory — categories, lab flags, and interaction
//! experiments, generated from the catalog.

use iot_analysis::report::TextTable;
use iot_testbed::catalog;
use iot_testbed::device::{Availability, Category};

fn main() {
    let mut table = TextTable::new(
        "Table 1: IoT devices under test",
        &["Category", "Device", "US", "UK", "Interactions"],
    );
    for &category in Category::all() {
        for spec in catalog::by_category(category) {
            let (us, uk) = match spec.availability {
                Availability::UsOnly => ("x", ""),
                Availability::UkOnly => ("", "x"),
                Availability::Both => ("x", "x"),
            };
            let interactions: Vec<&str> = spec.activities.iter().map(|a| a.name).collect();
            table.row(vec![
                category.name().to_string(),
                spec.name.to_string(),
                us.to_string(),
                uk.to_string(),
                interactions.join(", "),
            ]);
        }
    }
    let us = catalog::all()
        .iter()
        .filter(|d| d.availability != Availability::UkOnly)
        .count();
    let uk = catalog::all()
        .iter()
        .filter(|d| d.availability != Availability::UsOnly)
        .count();
    let common = catalog::all()
        .iter()
        .filter(|d| d.availability == Availability::Both)
        .count();
    iot_bench::emit(
        "table1",
        &table,
        &format!(
            "N_US=46, N_UK=35, N_common=26, N_total=81 — ours: N_US={us}, N_UK={uk}, \
             N_common={common}, N_total={}",
            us + uk
        ),
    );
}
