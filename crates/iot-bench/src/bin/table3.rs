//! Table 3: number of non-first parties contacted by devices, grouped by
//! device category and party type.

use iot_analysis::destinations::ColumnCtx;
use iot_analysis::report::TextTable;
use iot_geodb::party::PartyType;
use iot_testbed::device::Category;

fn main() {
    let scale = iot_bench::scale();
    iot_obs::progress!("building corpus at {scale:?} scale…");
    let corpus = iot_bench::build_corpus(iot_bench::campaign_config(scale));

    let columns = ColumnCtx::standard();
    let mut headers = vec!["Category", "Party"];
    let header_strings: Vec<String> = columns.iter().map(|c| c.header()).collect();
    headers.extend(header_strings.iter().map(|s| s.as_str()));
    let mut table = TextTable::new("Table 3: non-first parties by device category", &headers);

    for &category in Category::all() {
        for party in [PartyType::Support, PartyType::Third] {
            let mut row = vec![category.name().to_string(), party.to_string()];
            for ctx in columns {
                row.push(
                    corpus
                        .destinations
                        .unique_destinations_by_category(ctx, category, party)
                        .to_string(),
                );
            }
            table.row(row);
        }
    }
    iot_bench::emit(
        "table3",
        &table,
        "cameras contact the most support parties (US 49 / UK 50); TVs contact the most \
         third parties (US 4 / UK 2)",
    );
}
