//! §7.3: unexpected behavior in the uncontrolled user study — detections
//! matched against ground truth, separating intentional interactions from
//! passive presence-triggered recordings.

use iot_analysis::inference::train_device_model;
use iot_analysis::report::TextTable;
use iot_analysis::unexpected::{detect_activities, match_against_ground_truth};
use iot_geodb::registry::GeoDb;
use iot_testbed::lab::{Lab, LabSite};
use iot_testbed::user_study::{simulate, StudyConfig};

fn main() {
    let scale = iot_bench::scale();
    let config = iot_bench::inference_config(scale);
    let campaign = iot_bench::training_campaign(scale);
    let days = match scale {
        iot_bench::Scale::Quick => 3,
        iot_bench::Scale::Medium => 14,
        iot_bench::Scale::Full => 180,
    };
    let db = GeoDb::new();
    let (captures, events) = simulate(
        &db,
        &StudyConfig {
            days,
            ..StudyConfig::default()
        },
    );
    println!(
        "simulated {days} study days: {} ground-truth events across {} devices\n",
        events.len(),
        captures.len()
    );

    let lab = Lab::deploy(LabSite::Us);
    let mut table = TextTable::new(
        "§7.3: user-study detections vs ground truth",
        &["Device", "Detections", "Intentional", "Passive", "Unmatched"],
    );
    for capture in &captures {
        let device = match lab.device(capture.device_name) {
            Some(d) => d,
            None => continue,
        };
        iot_obs::progress!("  training {}", capture.device_name);
        let model = train_device_model(&db, &campaign, device, false, &config);
        let detections = match detect_activities(&model, &capture.packets) {
            Some(d) => d,
            None => continue, // below the F1 gate
        };
        let report =
            match_against_ground_truth(capture.device_name, &detections, &events, 120.0);
        table.row(vec![
            capture.device_name.to_string(),
            detections.len().to_string(),
            report.matched_intentional.to_string(),
            report.matched_passive.to_string(),
            report.unmatched.to_string(),
        ]);
    }
    iot_bench::emit(
        "user_study",
        &table,
        "Ring and Zmodo doorbells record video on every passive movement (undisclosed); \
         most other detections correspond to commonplace intentional interactions \
         (fridge, microwave, laundry)",
    );
}
