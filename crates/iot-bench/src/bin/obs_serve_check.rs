//! Live-telemetry endpoint smoke test, run by `verify.sh`.
//!
//! Starts the `iot-obs` HTTP server on an ephemeral localhost port,
//! drives a small instrumented campaign through the parallel pipeline on
//! a worker thread, and — while and after it runs — probes the endpoint
//! with raw `TcpStream` requests (the in-tree equivalent of `curl`):
//!
//! 1. `/progress` responds live during the campaign;
//! 2. `/metrics` is Prometheus text exposition with `# TYPE` lines,
//!    counter/histogram series, and the pipeline's stage counters;
//! 3. `/trace` parses as Chrome trace-event JSON with a non-empty
//!    `traceEvents` array;
//! 4. the final `/progress` ledger satisfies the `IngestStats`
//!    conservation invariant (`generated + duplicated == ingested +
//!    dropped + lost + quarantined`) even under an armed fault plan,
//!    and — with the instrumented allocator counting — carries a live
//!    `alloc` block while `/metrics` carries the per-span memory series;
//! 5. unknown routes answer 404 and non-GET methods answer 405.
//!
//! Exits non-zero on any failure, so `verify.sh` can gate on it.

use iot_analysis::pipeline::Pipeline;
use iot_core::json::Json;
use iot_testbed::schedule::CampaignConfig;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;
use std::time::Duration;

/// Sends one raw HTTP request and returns `(status_line, body)`.
fn request(addr: SocketAddr, head: &str) -> Result<(String, String), String> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))
        .map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(format!("{head}\r\nHost: localhost\r\n\r\n").as_bytes())
        .map_err(|e| format!("write: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("read: {e}"))?;
    let status = response
        .lines()
        .next()
        .unwrap_or_default()
        .to_string();
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .ok_or_else(|| format!("no header/body separator in response to {head:?}"))?;
    Ok((status, body))
}

fn get(addr: SocketAddr, path: &str) -> Result<(String, String), String> {
    request(addr, &format!("GET {path} HTTP/1.1"))
}

fn expect_status(head: &str, status: &str, want: &str) -> Result<(), String> {
    if status.contains(want) {
        Ok(())
    } else {
        Err(format!("{head}: expected {want}, got {status:?}"))
    }
}

/// Extracts `progress.ingest.<field>` from a `/progress` body.
fn ingest_field(progress: &Json, field: &str) -> Result<u64, String> {
    progress
        .get("progress")
        .and_then(|p| p.get("ingest"))
        .and_then(|i| i.get(field))
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("/progress: missing progress.ingest.{field}"))
}

fn check() -> Result<(), String> {
    let addr = iot_obs::serve::start("127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
    println!("obs_serve_check: endpoint on {addr}");
    // Heap counting on, so the live surfaces must carry the allocator
    // series: per-span memory counters in /metrics, the alloc block in
    // /progress.
    iot_obs::alloc::set_enabled(true);

    // A small campaign, instrumented and lightly faulted so quarantine
    // accounting is exercised, on a worker thread so the endpoint can be
    // probed while the run is in flight.
    let campaign = std::thread::spawn(move || {
        let mut p = Pipeline::with_obs(true);
        p.set_fault_plan(iot_chaos::FaultPlan {
            panic_rate: 0.01,
            ..iot_chaos::FaultPlan::uniform(0x5EEDED, 0.01)
        });
        p.run_campaign_parallel(
            CampaignConfig {
                automated_reps: 1,
                manual_reps: 1,
                power_reps: 1,
                idle_hours: 0.05,
                include_vpn: false,
            },
            2,
        );
        p.finish()
    });

    // 1. The endpoint must answer while the campaign runs (the very
    // first probes may race the first publication; any well-formed
    // response counts as live).
    let (status, _) = get(addr, "/progress")?;
    expect_status("live /progress", &status, "200")?;
    println!("obs_serve_check: /progress live during campaign ({status})");

    let report = campaign
        .join()
        .map_err(|_| "campaign thread panicked".to_string())?;

    // 2. /metrics: Prometheus exposition of the folded registry.
    let (status, metrics) = get(addr, "/metrics")?;
    expect_status("/metrics", &status, "200")?;
    for needle in [
        "# TYPE iot_experiments_total counter",
        "iot_flows_total ",
        "# TYPE iot_experiment_packets histogram",
        "iot_experiment_packets_bucket{le=",
        "_sum ",
        "_count ",
        "iot_span_duration_ns_bucket{span=\"ingest\",le=",
        "iot_span_alloc_bytes_total{span=",
    ] {
        if !metrics.contains(needle) {
            return Err(format!("/metrics: missing {needle:?} in:\n{metrics}"));
        }
    }
    println!("obs_serve_check: /metrics OK ({} bytes)", metrics.len());

    // 3. /trace: Chrome trace-event JSON, non-empty.
    let (status, trace) = get(addr, "/trace")?;
    expect_status("/trace", &status, "200")?;
    let trace = Json::parse(&trace).map_err(|e| format!("/trace: not JSON: {e}"))?;
    let events = trace
        .get("traceEvents")
        .and_then(Json::items)
        .ok_or("/trace: no traceEvents array")?;
    if events.is_empty() {
        return Err("/trace: traceEvents is empty".to_string());
    }
    println!("obs_serve_check: /trace OK ({} events)", events.len());

    // 4. Final /progress must carry the reconciled ingest ledger.
    let (status, progress) = get(addr, "/progress")?;
    expect_status("final /progress", &status, "200")?;
    let progress = Json::parse(&progress).map_err(|e| format!("/progress: not JSON: {e}"))?;
    let generated = ingest_field(&progress, "packets_generated")?;
    let duplicated = ingest_field(&progress, "packets_duplicated")?;
    let ingested = ingest_field(&progress, "packets_ingested")?;
    let dropped = ingest_field(&progress, "packets_dropped")?;
    let lost = ingest_field(&progress, "packets_lost")?;
    let quarantined = ingest_field(&progress, "packets_quarantined")?;
    if generated + duplicated != ingested + dropped + lost + quarantined {
        return Err(format!(
            "/progress ledger does not reconcile: {generated} + {duplicated} != \
             {ingested} + {dropped} + {lost} + {quarantined}"
        ));
    }
    if !report.ingest.reconciles() {
        return Err("pipeline ledger does not reconcile".to_string());
    }
    if generated != report.ingest.packets_generated {
        return Err(format!(
            "/progress ledger diverges from the pipeline report: \
             {generated} != {}",
            report.ingest.packets_generated
        ));
    }
    println!(
        "obs_serve_check: /progress ledger reconciles \
         ({generated} generated, {quarantined} quarantined)"
    );
    // With counting on, the publication must include live heap facts.
    let alloc_bytes = progress
        .get("progress")
        .and_then(|p| p.get("alloc"))
        .and_then(|a| a.get("bytes_total"))
        .and_then(Json::as_u64)
        .ok_or("/progress: missing progress.alloc.bytes_total")?;
    if alloc_bytes == 0 {
        return Err("/progress: alloc.bytes_total is zero with counting on".to_string());
    }
    println!("obs_serve_check: /progress alloc block OK ({alloc_bytes} bytes allocated)");

    // 5. Error paths.
    let (status, _) = get(addr, "/nope")?;
    expect_status("/nope", &status, "404")?;
    let (status, _) = request(addr, "POST /metrics HTTP/1.1")?;
    expect_status("POST /metrics", &status, "405")?;
    println!("obs_serve_check: 404/405 paths OK");
    Ok(())
}

fn main() -> ExitCode {
    match check() {
        Ok(()) => {
            println!("obs_serve_check: OK");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("obs_serve_check: FAIL — {e}");
            ExitCode::FAILURE
        }
    }
}
