//! Serial-vs-parallel pipeline ingestion benchmark.
//!
//! Runs the full analysis pipeline (destinations + encryption + PII over
//! a complete campaign, controlled and idle) once per timed iteration,
//! first through the serial driver and then through the sharded parallel
//! driver, verifies the two reports are byte-identical, and writes the
//! timing summary to `BENCH_pipeline.json`.
//!
//! The baseline benches force observability *and* allocator counting
//! *off* (regardless of `IOT_OBS` / `IOT_OBS_ALLOC`, so the committed
//! trajectory stays comparable), then paired benches re-run the serial
//! driver with observability forced *on* (`obs_overhead_ratio`) and with
//! only heap counting forced on (`alloc_overhead_ratio`); `obs_check`
//! gates both ratios in `verify.sh`. A dedicated counting-on serial run
//! yields the committed `alloc` block — total heap traffic,
//! allocations per experiment (ratcheted per host by `bench_trend`),
//! high-water, and kernel peak RSS — and must reproduce the baseline
//! report byte for byte (`alloc_report_identical`). When `IOT_OBS` is
//! set, an `iot_obs::RunReport` for one instrumented run is written to
//! `IOT_OBS_OUT` (default `results/obs_run.json`).
//!
//! Environment knobs:
//!
//! * `IOT_SCALE` — campaign grid (`quick` / `medium` / `full`); this
//!   binary defaults to `quick` since each iteration runs the whole
//!   campaign.
//! * `IOT_BENCH_ITERS` — timed iterations per driver (default 3).
//! * `IOT_BENCH_WARMUP` — untimed warmup iterations per driver
//!   (default 1).
//! * `IOT_BENCH_WORKERS` — parallel worker count (default: available
//!   hardware parallelism).
//! * `IOT_BENCH_OUT` — output path (default `BENCH_pipeline.json`).
//! * `IOT_OBS` / `IOT_OBS_OUT` — run-report emission (see `iot-obs`).
//! * `IOT_OBS_TRACE_OUT` / `IOT_OBS_TRACE_DET_OUT` / `IOT_OBS_PROM_OUT`
//!   — exporter artifact paths (default `target/obs_trace.json`,
//!   `target/obs_trace_det.json`, `target/obs_metrics.prom`). The
//!   deterministic trace is additionally required to be byte-identical
//!   between the serial and parallel instrumented runs whenever no ring
//!   overflow occurred.

use iot_analysis::pipeline::Pipeline;
use iot_bench::harness::bench;
use iot_bench::{campaign_config, Scale};
use iot_core::json::{Json, ToJson};
use iot_obs::{chrome_trace, prometheus, RunReport, TraceMode};
use iot_testbed::schedule::{Campaign, CampaignConfig};
use std::io::Write;
use std::path::PathBuf;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

fn serial_report_json(config: CampaignConfig, obs: bool) -> String {
    let mut p = Pipeline::with_obs(obs);
    p.run_campaign(config);
    p.finish().to_json().dump()
}

fn parallel_report_json(config: CampaignConfig, workers: usize) -> String {
    let mut p = Pipeline::with_obs(false);
    p.run_campaign_parallel(config, workers);
    p.finish().to_json().dump()
}

fn main() {
    // Whole-campaign iterations are expensive; default to the smallest
    // grid unless the caller asks for more.
    let scale = match std::env::var("IOT_SCALE").as_deref() {
        Ok("medium") => Scale::Medium,
        Ok("full") => Scale::Full,
        _ => Scale::Quick,
    };
    let config = campaign_config(scale);
    let iters = env_usize("IOT_BENCH_ITERS", 3);
    let warmup = env_usize("IOT_BENCH_WARMUP", 1);
    let hw_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers = env_usize("IOT_BENCH_WORKERS", hw_threads);
    let experiments =
        Campaign::new(config).controlled_experiment_count();

    iot_obs::progress!(
        "bench_pipeline: scale={} experiments≈{experiments} workers={workers} \
         iters={iters} warmup={warmup} hw_threads={hw_threads}",
        scale.name()
    );

    // Resolve the obs config once (it may flip allocator counting on via
    // IOT_OBS_ALLOC), then take manual control: the committed timing
    // trajectory is always measured with heap counting *off*, and the
    // allocator sections below force it on explicitly, so the numbers are
    // comparable regardless of the caller's environment.
    iot_obs::enabled();
    iot_obs::alloc::set_enabled(false);

    // Correctness gates first: the parallel driver must reproduce the
    // serial report byte for byte, and turning instrumentation on must
    // not change the report, before any timing means anything.
    let serial_json = serial_report_json(config, false);
    let parallel_json = parallel_report_json(config, workers);
    let identical = serial_json == parallel_json;
    if !identical {
        eprintln!("bench_pipeline: FAIL — parallel report diverged from serial");
    }
    // Allocator byte-identity gate *and* the committed heap measurement,
    // from one serial run with heap counting on and observability off —
    // counting alone must not perturb the report, and with the run on a
    // single thread the thread-local delta is the pipeline's entire heap
    // traffic. The high-water mark is reset first so it reflects this
    // run's heap growth, not earlier gate runs.
    iot_obs::alloc::set_enabled(true);
    iot_obs::alloc::reset_high_water();
    let alloc_before = iot_obs::alloc::thread_snapshot();
    let alloc_json = serial_report_json(config, false);
    let alloc_traffic = iot_obs::alloc::thread_snapshot().since(&alloc_before);
    let alloc_high_water = iot_obs::alloc::process_high_water_bytes();
    iot_obs::alloc::set_enabled(false);
    let alloc_report_identical = alloc_json == serial_json;
    if !alloc_report_identical {
        eprintln!("bench_pipeline: FAIL — allocator-counted report diverged from baseline");
    }

    // The instrumented runs keep counting on so their artifacts (obs
    // report, Prometheus exposition, stage table) carry per-span heap
    // attribution; the identity gate below then covers obs + allocator
    // combined against the plain baseline.
    iot_obs::alloc::set_enabled(true);
    let (obs_report, obs_registry) = {
        let mut p = Pipeline::with_obs(true);
        p.run_campaign_parallel(config, workers);
        p.finish_with_obs()
    };
    let obs_identical = obs_report.to_json().dump() == serial_json;
    if !obs_identical {
        eprintln!("bench_pipeline: FAIL — instrumented report diverged from baseline");
    }

    // Flight-recorder determinism gate: the logical event timeline (the
    // deterministic Chrome-trace view) must be byte-identical between an
    // instrumented serial run and the instrumented parallel run above.
    // Only enforceable when neither ring overflowed — an overwritten
    // window is a different (worker-dependent) subset by construction.
    let serial_obs_registry = {
        let mut p = Pipeline::with_obs(true);
        p.run_campaign(config);
        p.finish_with_obs().1
    };
    iot_obs::alloc::set_enabled(false);
    let serial_timeline = serial_obs_registry.timeline();
    let parallel_timeline = obs_registry.timeline();
    let det_serial = chrome_trace(&serial_timeline, TraceMode::Deterministic).dump();
    let det_parallel = chrome_trace(&parallel_timeline, TraceMode::Deterministic).dump();
    let events_overwritten = serial_timeline.overwritten + parallel_timeline.overwritten;
    let trace_det_identical = det_serial == det_parallel;
    let trace_det_enforced = events_overwritten == 0;
    if !trace_det_identical && trace_det_enforced {
        eprintln!(
            "bench_pipeline: FAIL — deterministic event trace diverged between \
             serial and parallel runs"
        );
    } else if !trace_det_identical {
        eprintln!(
            "bench_pipeline: WARN — deterministic traces differ, but \
             {events_overwritten} events were overwritten (raise IOT_OBS_EVENTS \
             to enforce at this scale)"
        );
    }

    // Exporter artifacts: the parallel run's wall-clock Chrome trace
    // (Perfetto-loadable), its deterministic counterpart, and the
    // Prometheus exposition of the folded registry.
    let write_artifact = |env: &str, default: &str, contents: &str| {
        let path = PathBuf::from(std::env::var(env).unwrap_or_else(|_| default.to_string()));
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(parent);
            }
        }
        match std::fs::write(&path, contents) {
            Ok(()) => iot_obs::progress!("bench_pipeline: wrote {}", path.display()),
            Err(e) => eprintln!("bench_pipeline: write {} failed: {e}", path.display()),
        }
    };
    write_artifact(
        "IOT_OBS_TRACE_OUT",
        "target/obs_trace.json",
        &chrome_trace(&parallel_timeline, TraceMode::Wall).dump(),
    );
    write_artifact("IOT_OBS_TRACE_DET_OUT", "target/obs_trace_det.json", &det_parallel);
    write_artifact(
        "IOT_OBS_PROM_OUT",
        "target/obs_metrics.prom",
        &prometheus(&obs_registry.snapshot()),
    );

    let serial = bench("pipeline_serial", warmup, iters, || {
        serial_report_json(config, false)
    });
    let parallel = bench("pipeline_parallel", warmup, iters, || {
        parallel_report_json(config, workers)
    });
    // Instrumentation overhead is measured on *interleaved* pairs: one
    // obs-off run, then one obs-on run, per iteration. Back-to-back
    // blocks would let slow drift on a busy machine (thermal, cache, a
    // neighbor VM) land entirely on one side and bias the ratio; paired
    // iterations put the drift on both sides equally.
    let mut base_ms = Vec::with_capacity(iters);
    let mut obs_ms = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = std::time::Instant::now();
        std::hint::black_box(serial_report_json(config, false));
        base_ms.push(t.elapsed().as_secs_f64() * 1e3);
        let t = std::time::Instant::now();
        std::hint::black_box(serial_report_json(config, true));
        obs_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let serial_base = iot_bench::harness::BenchResult::new(
        "pipeline_serial_paired".to_string(),
        iters,
        base_ms,
    );
    let serial_obs = iot_bench::harness::BenchResult::new(
        "pipeline_serial_obs".to_string(),
        iters,
        obs_ms,
    );
    // Allocator-counting overhead, measured the same interleaved way but
    // with observability off on both sides: counting-off run, counting-on
    // run, per iteration. This isolates the atomic/thread-local counter
    // cost from the span/event cost gated above.
    let mut alloc_base_ms = Vec::with_capacity(iters);
    let mut alloc_on_ms = Vec::with_capacity(iters);
    for _ in 0..iters {
        iot_obs::alloc::set_enabled(false);
        let t = std::time::Instant::now();
        std::hint::black_box(serial_report_json(config, false));
        alloc_base_ms.push(t.elapsed().as_secs_f64() * 1e3);
        iot_obs::alloc::set_enabled(true);
        let t = std::time::Instant::now();
        std::hint::black_box(serial_report_json(config, false));
        alloc_on_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    iot_obs::alloc::set_enabled(false);
    let serial_alloc_base = iot_bench::harness::BenchResult::new(
        "pipeline_alloc_baseline".to_string(),
        iters,
        alloc_base_ms,
    );
    let serial_alloc = iot_bench::harness::BenchResult::new(
        "pipeline_alloc_on".to_string(),
        iters,
        alloc_on_ms,
    );
    let speedup = serial.median_ms() / parallel.median_ms();
    let obs_overhead = serial_obs.median_ms() / serial_base.median_ms();
    let alloc_overhead = serial_alloc.median_ms() / serial_alloc_base.median_ms();

    // Per-stage medians from the instrumented *serial* run's span
    // histograms — the same histograms the flight-recorder stage table
    // prints. Captured into the committed bench snapshot so PRs that
    // shift time between ingest stages are visible in review, not just
    // in the total.
    let serial_snap = serial_obs_registry.snapshot();
    let mut stages = Json::obj();
    for (path, hist) in &serial_snap.span_durations {
        if path != "ingest" && !path.starts_with("ingest/") && path != "shard" {
            continue;
        }
        let mut s = Json::obj();
        s.set("calls", hist.count().to_json());
        if let Some(stats) = serial_snap.spans.get(path) {
            s.set("total_ms", stats.total_ms().to_json());
        }
        let q = |q: f64| hist.quantile_upper_bound(q).map(|ns| ns as f64 / 1e6);
        s.set("p50_ms", q(0.5).to_json());
        s.set("p95_ms", q(0.95).to_json());
        // Heap traffic attributed to the stage while counting was on —
        // the per-stage byte budget the docs table quotes.
        if let Some(a) = serial_snap.span_allocs.get(path) {
            s.set("alloc_bytes", a.bytes_allocated.to_json());
            s.set("allocs", a.allocs.to_json());
        }
        stages.set(path, s);
    }

    let mut out = Json::obj();
    out.set("benchmark", "pipeline_ingestion".to_json());
    out.set("scale", scale.name().to_json());
    out.set("experiments", experiments.to_json());
    out.set("workers", workers.to_json());
    out.set("hw_threads", hw_threads.to_json());
    out.set("reports_identical", identical.to_json());
    out.set("obs_report_identical", obs_identical.to_json());
    out.set("alloc_report_identical", alloc_report_identical.to_json());
    out.set("trace_deterministic_identical", trace_det_identical.to_json());
    out.set(
        "events_recorded",
        (parallel_timeline.events.len() as u64).to_json(),
    );
    out.set("events_overwritten", events_overwritten.to_json());
    out.set("serial", serial.to_json());
    out.set("parallel", parallel.to_json());
    out.set("serial_obs_baseline", serial_base.to_json());
    out.set("serial_obs", serial_obs.to_json());
    out.set("serial_alloc_baseline", serial_alloc_base.to_json());
    out.set("serial_alloc", serial_alloc.to_json());
    out.set("speedup_median", speedup.to_json());
    out.set("obs_overhead_ratio", obs_overhead.to_json());
    out.set("alloc_overhead_ratio", alloc_overhead.to_json());
    let mut alloc_block = Json::obj();
    alloc_block.set("bytes_total", alloc_traffic.bytes_allocated.to_json());
    alloc_block.set("allocs_total", alloc_traffic.allocs.to_json());
    alloc_block.set("freed_bytes_total", alloc_traffic.bytes_freed.to_json());
    alloc_block.set("frees_total", alloc_traffic.frees.to_json());
    alloc_block.set(
        "allocs_per_experiment",
        (alloc_traffic.allocs as f64 / experiments.max(1) as f64).to_json(),
    );
    alloc_block.set("high_water_bytes", alloc_high_water.to_json());
    alloc_block.set(
        "peak_rss_bytes",
        iot_obs::process::peak_rss_bytes().unwrap_or(0).to_json(),
    );
    out.set("alloc", alloc_block);
    out.set("stages", stages);
    out.set(
        "note",
        "speedup_median = serial median / parallel median; expect ≥2x on 4+ \
         hardware threads, ~1x or slightly below on a single core (sharding \
         overhead without parallel hardware). obs_overhead_ratio = serial \
         median with IOT_OBS instrumentation (spans + flight-recorder \
         events) forced on / forced off, measured on interleaved pairs \
         (serial_obs vs serial_obs_baseline); gated <1.05 by obs_check in \
         verify.sh. alloc_overhead_ratio = the same interleaved comparison \
         with only heap counting toggled (obs off both sides), gated <1.05. \
         alloc = one serial run's heap traffic with counting on; \
         allocs_per_experiment is ratcheted per host by bench_trend."
            .to_json(),
    );

    let path = std::env::var("IOT_BENCH_OUT")
        .unwrap_or_else(|_| "BENCH_pipeline.json".to_string());
    let mut f = std::fs::File::create(&path).expect("create bench output");
    writeln!(f, "{}", out.pretty()).expect("write bench output");

    if iot_obs::enabled() {
        let report = RunReport::from_registry("bench_pipeline", &obs_registry)
            .meta("scale", scale.name())
            .meta("workers", &workers.to_string())
            .meta("experiments", &experiments.to_string());
        match report.write() {
            Ok(p) => iot_obs::progress!("bench_pipeline: obs report -> {}", p.display()),
            Err(e) => eprintln!("bench_pipeline: obs report write failed: {e}"),
        }
        iot_obs::progress!("{}", report.stage_table());
    }

    iot_obs::progress!(
        "bench_pipeline: serial median {:.1} ms, parallel median {:.1} ms \
         ({workers} workers), speedup {speedup:.2}x, obs overhead \
         {obs_overhead:.3}x, alloc overhead {alloc_overhead:.3}x, \
         {:.1} MB / {} allocs per campaign (high-water {:.1} MB) -> {path}",
        serial.median_ms(),
        parallel.median_ms(),
        alloc_traffic.bytes_allocated as f64 / 1e6,
        alloc_traffic.allocs,
        alloc_high_water as f64 / 1e6
    );
    if !identical
        || !obs_identical
        || !alloc_report_identical
        || (!trace_det_identical && trace_det_enforced)
    {
        std::process::exit(1);
    }
}
