//! Serial-vs-parallel pipeline ingestion benchmark.
//!
//! Runs the full analysis pipeline (destinations + encryption + PII over
//! a complete campaign, controlled and idle) once per timed iteration,
//! first through the serial driver and then through the sharded parallel
//! driver, verifies the two reports are byte-identical, and writes the
//! timing summary to `BENCH_pipeline.json`.
//!
//! The baseline benches force observability *off* (regardless of
//! `IOT_OBS`, so the committed trajectory stays comparable), then a third
//! bench re-runs the serial driver with observability forced *on*; the
//! ratio of the two medians is the instrumentation overhead that
//! `obs_check` gates in `verify.sh`. When `IOT_OBS` is set, an
//! `iot_obs::RunReport` for one instrumented run is written to
//! `IOT_OBS_OUT` (default `results/obs_run.json`).
//!
//! Environment knobs:
//!
//! * `IOT_SCALE` — campaign grid (`quick` / `medium` / `full`); this
//!   binary defaults to `quick` since each iteration runs the whole
//!   campaign.
//! * `IOT_BENCH_ITERS` — timed iterations per driver (default 3).
//! * `IOT_BENCH_WARMUP` — untimed warmup iterations per driver
//!   (default 1).
//! * `IOT_BENCH_WORKERS` — parallel worker count (default: available
//!   hardware parallelism).
//! * `IOT_BENCH_OUT` — output path (default `BENCH_pipeline.json`).
//! * `IOT_OBS` / `IOT_OBS_OUT` — run-report emission (see `iot-obs`).
//! * `IOT_OBS_TRACE_OUT` / `IOT_OBS_TRACE_DET_OUT` / `IOT_OBS_PROM_OUT`
//!   — exporter artifact paths (default `target/obs_trace.json`,
//!   `target/obs_trace_det.json`, `target/obs_metrics.prom`). The
//!   deterministic trace is additionally required to be byte-identical
//!   between the serial and parallel instrumented runs whenever no ring
//!   overflow occurred.

use iot_analysis::pipeline::Pipeline;
use iot_bench::harness::bench;
use iot_bench::{campaign_config, Scale};
use iot_core::json::{Json, ToJson};
use iot_obs::{chrome_trace, prometheus, RunReport, TraceMode};
use iot_testbed::schedule::{Campaign, CampaignConfig};
use std::io::Write;
use std::path::PathBuf;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

fn serial_report_json(config: CampaignConfig, obs: bool) -> String {
    let mut p = Pipeline::with_obs(obs);
    p.run_campaign(config);
    p.finish().to_json().dump()
}

fn parallel_report_json(config: CampaignConfig, workers: usize) -> String {
    let mut p = Pipeline::with_obs(false);
    p.run_campaign_parallel(config, workers);
    p.finish().to_json().dump()
}

fn main() {
    // Whole-campaign iterations are expensive; default to the smallest
    // grid unless the caller asks for more.
    let scale = match std::env::var("IOT_SCALE").as_deref() {
        Ok("medium") => Scale::Medium,
        Ok("full") => Scale::Full,
        _ => Scale::Quick,
    };
    let config = campaign_config(scale);
    let iters = env_usize("IOT_BENCH_ITERS", 3);
    let warmup = env_usize("IOT_BENCH_WARMUP", 1);
    let hw_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers = env_usize("IOT_BENCH_WORKERS", hw_threads);
    let experiments =
        Campaign::new(config).controlled_experiment_count();

    iot_obs::progress!(
        "bench_pipeline: scale={} experiments≈{experiments} workers={workers} \
         iters={iters} warmup={warmup} hw_threads={hw_threads}",
        scale.name()
    );

    // Correctness gates first: the parallel driver must reproduce the
    // serial report byte for byte, and turning instrumentation on must
    // not change the report, before any timing means anything.
    let serial_json = serial_report_json(config, false);
    let parallel_json = parallel_report_json(config, workers);
    let identical = serial_json == parallel_json;
    if !identical {
        eprintln!("bench_pipeline: FAIL — parallel report diverged from serial");
    }
    let (obs_report, obs_registry) = {
        let mut p = Pipeline::with_obs(true);
        p.run_campaign_parallel(config, workers);
        p.finish_with_obs()
    };
    let obs_identical = obs_report.to_json().dump() == serial_json;
    if !obs_identical {
        eprintln!("bench_pipeline: FAIL — instrumented report diverged from baseline");
    }

    // Flight-recorder determinism gate: the logical event timeline (the
    // deterministic Chrome-trace view) must be byte-identical between an
    // instrumented serial run and the instrumented parallel run above.
    // Only enforceable when neither ring overflowed — an overwritten
    // window is a different (worker-dependent) subset by construction.
    let serial_obs_registry = {
        let mut p = Pipeline::with_obs(true);
        p.run_campaign(config);
        p.finish_with_obs().1
    };
    let serial_timeline = serial_obs_registry.timeline();
    let parallel_timeline = obs_registry.timeline();
    let det_serial = chrome_trace(&serial_timeline, TraceMode::Deterministic).dump();
    let det_parallel = chrome_trace(&parallel_timeline, TraceMode::Deterministic).dump();
    let events_overwritten = serial_timeline.overwritten + parallel_timeline.overwritten;
    let trace_det_identical = det_serial == det_parallel;
    let trace_det_enforced = events_overwritten == 0;
    if !trace_det_identical && trace_det_enforced {
        eprintln!(
            "bench_pipeline: FAIL — deterministic event trace diverged between \
             serial and parallel runs"
        );
    } else if !trace_det_identical {
        eprintln!(
            "bench_pipeline: WARN — deterministic traces differ, but \
             {events_overwritten} events were overwritten (raise IOT_OBS_EVENTS \
             to enforce at this scale)"
        );
    }

    // Exporter artifacts: the parallel run's wall-clock Chrome trace
    // (Perfetto-loadable), its deterministic counterpart, and the
    // Prometheus exposition of the folded registry.
    let write_artifact = |env: &str, default: &str, contents: &str| {
        let path = PathBuf::from(std::env::var(env).unwrap_or_else(|_| default.to_string()));
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(parent);
            }
        }
        match std::fs::write(&path, contents) {
            Ok(()) => iot_obs::progress!("bench_pipeline: wrote {}", path.display()),
            Err(e) => eprintln!("bench_pipeline: write {} failed: {e}", path.display()),
        }
    };
    write_artifact(
        "IOT_OBS_TRACE_OUT",
        "target/obs_trace.json",
        &chrome_trace(&parallel_timeline, TraceMode::Wall).dump(),
    );
    write_artifact("IOT_OBS_TRACE_DET_OUT", "target/obs_trace_det.json", &det_parallel);
    write_artifact(
        "IOT_OBS_PROM_OUT",
        "target/obs_metrics.prom",
        &prometheus(&obs_registry.snapshot()),
    );

    let serial = bench("pipeline_serial", warmup, iters, || {
        serial_report_json(config, false)
    });
    let parallel = bench("pipeline_parallel", warmup, iters, || {
        parallel_report_json(config, workers)
    });
    // Instrumentation overhead is measured on *interleaved* pairs: one
    // obs-off run, then one obs-on run, per iteration. Back-to-back
    // blocks would let slow drift on a busy machine (thermal, cache, a
    // neighbor VM) land entirely on one side and bias the ratio; paired
    // iterations put the drift on both sides equally.
    let mut base_ms = Vec::with_capacity(iters);
    let mut obs_ms = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = std::time::Instant::now();
        std::hint::black_box(serial_report_json(config, false));
        base_ms.push(t.elapsed().as_secs_f64() * 1e3);
        let t = std::time::Instant::now();
        std::hint::black_box(serial_report_json(config, true));
        obs_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let serial_base = iot_bench::harness::BenchResult::new(
        "pipeline_serial_paired".to_string(),
        iters,
        base_ms,
    );
    let serial_obs = iot_bench::harness::BenchResult::new(
        "pipeline_serial_obs".to_string(),
        iters,
        obs_ms,
    );
    let speedup = serial.median_ms() / parallel.median_ms();
    let obs_overhead = serial_obs.median_ms() / serial_base.median_ms();

    // Per-stage medians from the instrumented *serial* run's span
    // histograms — the same histograms the flight-recorder stage table
    // prints. Captured into the committed bench snapshot so PRs that
    // shift time between ingest stages are visible in review, not just
    // in the total.
    let serial_snap = serial_obs_registry.snapshot();
    let mut stages = Json::obj();
    for (path, hist) in &serial_snap.span_durations {
        if path != "ingest" && !path.starts_with("ingest/") && path != "shard" {
            continue;
        }
        let mut s = Json::obj();
        s.set("calls", hist.count().to_json());
        if let Some(stats) = serial_snap.spans.get(path) {
            s.set("total_ms", stats.total_ms().to_json());
        }
        let q = |q: f64| hist.quantile_upper_bound(q).map(|ns| ns as f64 / 1e6);
        s.set("p50_ms", q(0.5).to_json());
        s.set("p95_ms", q(0.95).to_json());
        stages.set(path, s);
    }

    let mut out = Json::obj();
    out.set("benchmark", "pipeline_ingestion".to_json());
    out.set("scale", scale.name().to_json());
    out.set("experiments", experiments.to_json());
    out.set("workers", workers.to_json());
    out.set("hw_threads", hw_threads.to_json());
    out.set("reports_identical", identical.to_json());
    out.set("obs_report_identical", obs_identical.to_json());
    out.set("trace_deterministic_identical", trace_det_identical.to_json());
    out.set(
        "events_recorded",
        (parallel_timeline.events.len() as u64).to_json(),
    );
    out.set("events_overwritten", events_overwritten.to_json());
    out.set("serial", serial.to_json());
    out.set("parallel", parallel.to_json());
    out.set("serial_obs_baseline", serial_base.to_json());
    out.set("serial_obs", serial_obs.to_json());
    out.set("speedup_median", speedup.to_json());
    out.set("obs_overhead_ratio", obs_overhead.to_json());
    out.set("stages", stages);
    out.set(
        "note",
        "speedup_median = serial median / parallel median; expect ≥2x on 4+ \
         hardware threads, ~1x or slightly below on a single core (sharding \
         overhead without parallel hardware). obs_overhead_ratio = serial \
         median with IOT_OBS instrumentation (spans + flight-recorder \
         events) forced on / forced off, measured on interleaved pairs \
         (serial_obs vs serial_obs_baseline); gated <1.05 by obs_check in \
         verify.sh"
            .to_json(),
    );

    let path = std::env::var("IOT_BENCH_OUT")
        .unwrap_or_else(|_| "BENCH_pipeline.json".to_string());
    let mut f = std::fs::File::create(&path).expect("create bench output");
    writeln!(f, "{}", out.pretty()).expect("write bench output");

    if iot_obs::enabled() {
        let report = RunReport::from_registry("bench_pipeline", &obs_registry)
            .meta("scale", scale.name())
            .meta("workers", &workers.to_string())
            .meta("experiments", &experiments.to_string());
        match report.write() {
            Ok(p) => iot_obs::progress!("bench_pipeline: obs report -> {}", p.display()),
            Err(e) => eprintln!("bench_pipeline: obs report write failed: {e}"),
        }
        iot_obs::progress!("{}", report.stage_table());
    }

    iot_obs::progress!(
        "bench_pipeline: serial median {:.1} ms, parallel median {:.1} ms \
         ({workers} workers), speedup {speedup:.2}x, obs overhead \
         {obs_overhead:.3}x -> {path}",
        serial.median_ms(),
        parallel.median_ms()
    );
    if !identical || !obs_identical || (!trace_det_identical && trace_det_enforced) {
        std::process::exit(1);
    }
}
