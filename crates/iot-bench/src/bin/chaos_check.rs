//! Chaos gate: seeded fault injection swept over the pipeline, run by
//! `verify.sh`.
//!
//! Degraded captures are the *normal* case for months-long unattended
//! gateway captures (§3.2), so robustness is a gated property here, not
//! an aspiration. For each fault rate in the sweep this binary runs the
//! full pipeline over a degraded campaign and asserts:
//!
//! 1. **No escaped panics** — every run completes, including a stage
//!    with seeded ingest-panic injection, which must end in quarantine
//!    (`experiments_quarantined > 0`), never a crash.
//! 2. **Valid reports** — every report's JSON round-trips through the
//!    in-tree parser.
//! 3. **Exact accounting** — `IngestStats` reconciles: generated +
//!    duplicated == ingested + dropped + lost + quarantined, at every
//!    rate.
//! 4. **Determinism under faults** — for the same fault seed the faulted
//!    report is byte-identical across the serial and 1/2/8-worker
//!    drivers, and a clean (all-zero-rate) plan is a perfect identity
//!    against an unarmed run.
//! 5. **Bounded drift** — at low fault rates the headline metrics
//!    (destination counts, PII findings, encryption mix) stay close to
//!    the clean baseline; losing 0.1% of packets must not reshape the
//!    paper's tables.
//! 6. **Stall quarantine** — seeded stalls that breach the supervised
//!    driver's watchdog deadline end as `stall_deadline` quarantines,
//!    with the decision (a value comparison, never a clock race)
//!    byte-identical across 1/2/8-worker drivers.
//! 7. **Deterministic retry** — with a retry budget, transient
//!    failures are re-attempted with seed-stable draws: retries rescue
//!    experiments, the extended ledger reconciles, and the report is
//!    byte-identical across drivers and across repeated runs.
//! 8. **Kill and resume** — a journaled supervised run whose journal is
//!    amputated mid-record resumes to a report byte-identical to the
//!    straight-through run, at 2 and at 8 workers; resuming a complete
//!    journal replays everything and runs nothing.
//!
//! Environment:
//!
//! * `IOT_SCALE` — `quick` / `medium` / `full` grid (see `iot-bench`).
//! * `IOT_CHAOS_RATES` — comma-separated sweep override, e.g. `0.001,0.01`.
//! * `IOT_CHAOS_SEED` — fault seed (default `0xC4A05`).
//! * `IOT_CHAOS_OUT` — results JSON path (default `target/chaos_check.json`).
//!
//! Exits non-zero on any gate failure.

use iot_analysis::pipeline::{Pipeline, PipelineReport, INJECTED_PANIC_MSG};
use iot_analysis::SupervisorConfig;
use iot_bench::{campaign_config, scale};
use iot_chaos::FaultPlan;
use iot_core::json::{Json, ToJson};
use iot_testbed::schedule::CampaignConfig;
use std::io::Write;
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// Worker counts the faulted report must be byte-identical across.
const WORKER_GRID: [usize; 3] = [1, 2, 8];
/// Default sweep of uniform fault rates.
const DEFAULT_RATES: [f64; 3] = [0.001, 0.01, 0.05];
/// Rates at or below this are "low" and must respect the drift gates.
const LOW_RATE: f64 = 0.011;
/// Injected ingest-panic probability for the quarantine stage.
const PANIC_RATE: f64 = 0.05;

/// Drift ceilings at low rates, deliberately loose multiples of the
/// measured drift (recorded in EXPERIMENTS.md §drift) so routine noise
/// cannot flake the gate while a real regression still trips it.
const MAX_DEST_REL_DRIFT: f64 = 0.25;
const MAX_PII_REL_DRIFT: f64 = 0.35;
const MAX_MIX_DELTA_PTS: f64 = 8.0;

/// Headline metrics compared against the clean baseline.
#[derive(Debug, Clone, Copy)]
struct Headline {
    experiments: u64,
    support_total: u64,
    third_total: u64,
    pii_findings: u64,
    /// Max |percentage-point| spread helper: stored as the per-lab mix.
    us_mix: [f64; 3],
    uk_mix: [f64; 3],
}

fn headline(report: &PipelineReport) -> Headline {
    let sum = |m: &std::collections::HashMap<String, usize>| {
        m.values().map(|&v| v as u64).sum()
    };
    let mix = |lab: &str| {
        report
            .encryption_mix
            .get(lab)
            .copied()
            .unwrap_or([0.0; 3])
    };
    Headline {
        experiments: report.experiments,
        support_total: sum(&report.support_destinations),
        third_total: sum(&report.third_destinations),
        pii_findings: report.pii_findings.len() as u64,
        us_mix: mix("US"),
        uk_mix: mix("UK"),
    }
}

/// Relative drift |a/b - 1|, treating a zero baseline as infinite drift
/// unless the faulted value is also zero.
fn rel_drift(faulted: u64, baseline: u64) -> f64 {
    if baseline == 0 {
        if faulted == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (faulted as f64 / baseline as f64 - 1.0).abs()
    }
}

fn mix_delta(a: &Headline, b: &Headline) -> f64 {
    let mut worst = 0.0f64;
    for (x, y) in a.us_mix.iter().zip(&b.us_mix) {
        worst = worst.max((x - y).abs());
    }
    for (x, y) in a.uk_mix.iter().zip(&b.uk_mix) {
        worst = worst.max((x - y).abs());
    }
    worst
}

fn run(config: CampaignConfig, plan: Option<FaultPlan>, workers: Option<usize>) -> PipelineReport {
    let mut p = Pipeline::with_obs(false);
    if let Some(plan) = plan {
        p.set_fault_plan(plan);
    }
    match workers {
        None => p.run_campaign(config),
        Some(w) => p.run_campaign_parallel(config, w),
    }
    p.finish()
}

fn run_supervised(
    config: CampaignConfig,
    plan: FaultPlan,
    workers: usize,
    sup: &SupervisorConfig,
) -> Result<(PipelineReport, iot_analysis::SuperviseSummary), String> {
    let mut p = Pipeline::with_obs(false);
    p.set_fault_plan(plan);
    let summary = p
        .run_campaign_supervised(config, workers, sup)
        .map_err(|e| format!("supervised run ({workers} workers): {e}"))?;
    Ok((p.finish(), summary))
}

/// Gate 2: the report must serialize to JSON the in-tree parser accepts.
fn check_valid_json(label: &str, report: &PipelineReport) -> Result<String, String> {
    let dump = report.to_json().dump();
    Json::parse(&dump).map_err(|e| format!("{label}: report JSON invalid: {e}"))?;
    Ok(dump)
}

fn check(out_path: &str) -> Result<(), String> {
    // Injected panics are drills: silence exactly their payloads so the
    // log shows gate results, not hundreds of expected backtraces. Any
    // other panic message still prints — and gate 1 fails the run.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if msg.contains(INJECTED_PANIC_MSG) {
            return;
        }
        prev_hook(info);
    }));

    let scale = scale();
    let config = campaign_config(scale);
    let seed = std::env::var("IOT_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC4A05u64);
    let rates: Vec<f64> = match std::env::var("IOT_CHAOS_RATES") {
        Ok(s) => s
            .split(',')
            .map(|r| r.trim().parse().map_err(|e| format!("bad rate {r:?}: {e}")))
            .collect::<Result<_, _>>()?,
        Err(_) => DEFAULT_RATES.to_vec(),
    };
    println!(
        "chaos_check: scale={} seed={seed:#x} rates={rates:?}",
        scale.name()
    );

    let mut results = Json::obj();
    results.set("scale", Json::Str(scale.name().to_string()));
    results.set("seed", seed.to_json());

    // Clean baseline for identity and drift comparisons.
    let t = Instant::now();
    let baseline = run(config, None, None);
    let baseline_json = check_valid_json("baseline", &baseline)?;
    if !baseline.ingest.is_clean() || !baseline.ingest.reconciles() {
        return Err(format!(
            "baseline: clean run has a dirty ledger: {:?}",
            baseline.ingest
        ));
    }
    let base = headline(&baseline);
    println!(
        "chaos_check: baseline {} experiments, {} pii findings ({:.1}s)",
        base.experiments,
        base.pii_findings,
        t.elapsed().as_secs_f64()
    );

    // Gate 4a: an armed all-zero-rate plan is an exact identity.
    let armed_clean = run(config, Some(FaultPlan::clean(seed)), None);
    if check_valid_json("clean-plan", &armed_clean)? != baseline_json {
        return Err("clean fault plan changed the report: degrade→salvage \
                    round-trip is not an identity"
            .to_string());
    }
    println!("chaos_check: clean-plan identity OK");

    let mut sweep = Vec::new();
    for &rate in &rates {
        let t = Instant::now();
        let plan = FaultPlan::uniform(seed, rate);
        let serial = run(config, Some(plan), None);
        let serial_json = check_valid_json(&format!("rate {rate}"), &serial)?;
        let ingest = &serial.ingest;

        // Gate 3: exact packet accounting.
        if !ingest.reconciles() {
            return Err(format!("rate {rate}: ledger does not reconcile: {ingest:?}"));
        }
        if rate > 0.0 && ingest.is_clean() {
            return Err(format!("rate {rate}: faults never fired: {ingest:?}"));
        }
        // Panic injection is off in this stage, so no experiment may be
        // lost — degraded, but always analyzed.
        if ingest.experiments_quarantined != 0 || ingest.shards_quarantined != 0 {
            return Err(format!("rate {rate}: unexpected quarantine: {ingest:?}"));
        }
        if serial.experiments != base.experiments {
            return Err(format!(
                "rate {rate}: experiment count changed ({} vs {})",
                serial.experiments, base.experiments
            ));
        }

        // Gate 4b: byte-identity across drivers under faults.
        for workers in WORKER_GRID {
            let parallel = run(config, Some(plan), Some(workers));
            if parallel.to_json().dump() != serial_json {
                return Err(format!(
                    "rate {rate}: {workers}-worker report diverged from serial"
                ));
            }
        }

        // Gate 5: bounded drift at low rates.
        let h = headline(&serial);
        let support_drift = rel_drift(h.support_total, base.support_total);
        let third_drift = rel_drift(h.third_total, base.third_total);
        let pii_drift = rel_drift(h.pii_findings, base.pii_findings);
        let mix_pts = mix_delta(&h, &base);
        println!(
            "chaos_check: rate {rate}: dropped {} lost {} truncated {} resyncs {} | \
             drift support {:.3} third {:.3} pii {:.3} mix {:.2}pts ({:.1}s)",
            ingest.packets_dropped,
            ingest.packets_lost,
            ingest.packets_truncated,
            ingest.salvage_resyncs,
            support_drift,
            third_drift,
            pii_drift,
            mix_pts,
            t.elapsed().as_secs_f64()
        );
        if rate <= LOW_RATE {
            if support_drift > MAX_DEST_REL_DRIFT || third_drift > MAX_DEST_REL_DRIFT {
                return Err(format!(
                    "rate {rate}: destination drift {support_drift:.3}/{third_drift:.3} \
                     exceeds {MAX_DEST_REL_DRIFT}"
                ));
            }
            if pii_drift > MAX_PII_REL_DRIFT {
                return Err(format!(
                    "rate {rate}: PII drift {pii_drift:.3} exceeds {MAX_PII_REL_DRIFT}"
                ));
            }
            if mix_pts > MAX_MIX_DELTA_PTS {
                return Err(format!(
                    "rate {rate}: encryption mix moved {mix_pts:.2} points \
                     (max {MAX_MIX_DELTA_PTS})"
                ));
            }
        }

        let mut entry = Json::obj();
        entry.set("rate", rate.to_json());
        entry.set("ingest", ingest.to_json());
        entry.set("support_drift", support_drift.to_json());
        entry.set("third_drift", third_drift.to_json());
        entry.set("pii_drift", pii_drift.to_json());
        entry.set("mix_delta_pts", mix_pts.to_json());
        entry.set("parallel_identical", Json::Bool(true));
        sweep.push(entry);
    }
    results.set("sweep", Json::Arr(sweep));

    // Gate 1 (hard part): seeded ingest panics end in quarantine, with
    // the run surviving and still deterministic across drivers.
    let t = Instant::now();
    let panic_plan = FaultPlan {
        panic_rate: PANIC_RATE,
        ..FaultPlan::uniform(seed, 0.01)
    };
    let serial = run(config, Some(panic_plan), None);
    let serial_json = check_valid_json("panic stage", &serial)?;
    let ingest = &serial.ingest;
    if ingest.experiments_quarantined == 0 {
        return Err(format!(
            "panic stage: panic_rate {PANIC_RATE} quarantined nothing: {ingest:?}"
        ));
    }
    if !ingest.reconciles() {
        return Err(format!("panic stage: ledger does not reconcile: {ingest:?}"));
    }
    if serial.experiments + ingest.experiments_quarantined != base.experiments {
        return Err(format!(
            "panic stage: {} analyzed + {} quarantined != {} generated",
            serial.experiments, ingest.experiments_quarantined, base.experiments
        ));
    }
    for workers in WORKER_GRID {
        let parallel = run(config, Some(panic_plan), Some(workers));
        if parallel.to_json().dump() != serial_json {
            return Err(format!(
                "panic stage: {workers}-worker report diverged from serial"
            ));
        }
    }
    println!(
        "chaos_check: panic stage: {} of {} experiments quarantined, run survived ({:.1}s)",
        ingest.experiments_quarantined,
        base.experiments,
        t.elapsed().as_secs_f64()
    );
    let mut panic_stage = Json::obj();
    panic_stage.set("panic_rate", PANIC_RATE.to_json());
    panic_stage.set("ingest", ingest.to_json());
    results.set("panic_stage", panic_stage);
    let no_retry_quarantined = ingest.experiments_quarantined;

    // Gate 6: stalls breaching the watchdog deadline are quarantined as
    // `stall_deadline`, identically across drivers.
    let t = Instant::now();
    let stall_plan = FaultPlan {
        stall_rate: 0.04,
        stall_max_micros: 40_000,
        ..FaultPlan::clean(seed)
    };
    let stall_sup = SupervisorConfig {
        deadline: Some(Duration::from_millis(10)),
        ..SupervisorConfig::default()
    };
    let (stall_base, _) = run_supervised(config, stall_plan, 1, &stall_sup)?;
    let stall_json = check_valid_json("stall stage", &stall_base)?;
    let ingest = &stall_base.ingest;
    let stalled = ingest.stage_errors.get("stall_deadline").copied().unwrap_or(0);
    if stalled == 0 {
        return Err(format!(
            "stall stage: 4% stalls up to 40ms against a 10ms deadline \
             quarantined nothing: {ingest:?}"
        ));
    }
    if !ingest.reconciles() {
        return Err(format!("stall stage: ledger does not reconcile: {ingest:?}"));
    }
    if stall_base.experiments + ingest.experiments_quarantined != base.experiments {
        return Err(format!(
            "stall stage: {} analyzed + {} quarantined != {} generated",
            stall_base.experiments, ingest.experiments_quarantined, base.experiments
        ));
    }
    if !stall_base.coverage.is_degraded() {
        return Err("stall stage: quarantines did not degrade the coverage manifest".to_string());
    }
    for workers in WORKER_GRID {
        let (parallel, _) = run_supervised(config, stall_plan, workers, &stall_sup)?;
        if parallel.to_json().dump() != stall_json {
            return Err(format!(
                "stall stage: {workers}-worker report diverged from serial"
            ));
        }
    }
    println!(
        "chaos_check: stall stage: {stalled} of {} experiments quarantined at the deadline, \
         drivers identical ({:.1}s)",
        base.experiments,
        t.elapsed().as_secs_f64()
    );
    let mut stall_stage = Json::obj();
    stall_stage.set("stall_rate", 0.04f64.to_json());
    stall_stage.set("ingest", ingest.to_json());
    results.set("stall_stage", stall_stage);

    // Gate 7: a retry budget rescues transient failures with seed-stable
    // draws; the report stays byte-identical across drivers and runs.
    let t = Instant::now();
    let retry_sup = SupervisorConfig {
        max_retries: 2,
        ..SupervisorConfig::default()
    };
    let (retry_base, _) = run_supervised(config, panic_plan, 1, &retry_sup)?;
    let retry_json = check_valid_json("retry stage", &retry_base)?;
    let ingest = &retry_base.ingest;
    if ingest.retry_attempts == 0 || ingest.experiments_retried == 0 {
        return Err(format!(
            "retry stage: retry budget 2 never fired against panic rate \
             {PANIC_RATE}: {ingest:?}"
        ));
    }
    if !ingest.reconciles() {
        return Err(format!("retry stage: ledger does not reconcile: {ingest:?}"));
    }
    let permanent = ingest.experiments_quarantined + ingest.experiments_abandoned;
    if permanent >= no_retry_quarantined {
        return Err(format!(
            "retry stage: {permanent} permanent losses with retries, \
             {no_retry_quarantined} without — retries rescued nothing"
        ));
    }
    for workers in WORKER_GRID {
        let (parallel, _) = run_supervised(config, panic_plan, workers, &retry_sup)?;
        if parallel.to_json().dump() != retry_json {
            return Err(format!(
                "retry stage: {workers}-worker report diverged from serial"
            ));
        }
    }
    let (rerun, _) = run_supervised(config, panic_plan, 1, &retry_sup)?;
    if rerun.to_json().dump() != retry_json {
        return Err("retry stage: repeated run diverged — retry draws are not seed-stable"
            .to_string());
    }
    println!(
        "chaos_check: retry stage: {} retried ({} attempts), {permanent} permanent \
         (was {no_retry_quarantined} without retries), drivers and reruns identical ({:.1}s)",
        ingest.experiments_retried,
        ingest.retry_attempts,
        t.elapsed().as_secs_f64()
    );
    let mut retry_stage = Json::obj();
    retry_stage.set("max_retries", 2u64.to_json());
    retry_stage.set("ingest", ingest.to_json());
    results.set("retry_stage", retry_stage);

    // Gate 8: kill-and-resume. Journal a supervised run, amputate the
    // journal mid-record as a SIGKILL would, resume from the stump at
    // two worker widths, and demand byte-identity with the
    // straight-through report.
    let t = Instant::now();
    let (straight, _) = run_supervised(config, panic_plan, 2, &retry_sup)?;
    let straight_json = check_valid_json("resume stage", &straight)?;
    let stump_a = std::path::PathBuf::from(format!(
        "target/chaos_resume_{}_a.jnl",
        std::process::id()
    ));
    let stump_b = std::path::PathBuf::from(format!(
        "target/chaos_resume_{}_b.jnl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&stump_a);
    let journal_sup = SupervisorConfig {
        journal: Some(stump_a.clone()),
        ..retry_sup.clone()
    };
    run_supervised(config, panic_plan, 2, &journal_sup)?;
    let bytes = std::fs::read(&stump_a).map_err(|e| format!("resume stage: {e}"))?;
    if bytes.len() < 64 {
        return Err(format!(
            "resume stage: implausibly small journal ({} bytes)",
            bytes.len()
        ));
    }
    let stump = &bytes[..bytes.len() * 6 / 10];
    std::fs::write(&stump_a, stump).map_err(|e| format!("resume stage: {e}"))?;
    std::fs::write(&stump_b, stump).map_err(|e| format!("resume stage: {e}"))?;
    let mut replayed = 0;
    for (path, workers) in [(&stump_a, 2usize), (&stump_b, 8usize)] {
        let resume_sup = SupervisorConfig {
            journal: Some(path.clone()),
            resume: true,
            ..retry_sup.clone()
        };
        let (resumed, summary) = run_supervised(config, panic_plan, workers, &resume_sup)?;
        if summary.units_replayed == 0 || summary.units_run == 0 {
            return Err(format!(
                "resume stage: truncation did not split the work \
                 (replayed {}, ran {})",
                summary.units_replayed, summary.units_run
            ));
        }
        replayed = summary.units_replayed;
        if resumed.to_json().dump() != straight_json {
            return Err(format!(
                "resume stage: {workers}-worker resumed report diverged from \
                 straight-through"
            ));
        }
    }
    // Resuming a journal that is already complete replays everything.
    let resume_sup = SupervisorConfig {
        journal: Some(stump_a.clone()),
        resume: true,
        ..retry_sup.clone()
    };
    let (complete, summary) = run_supervised(config, panic_plan, 2, &resume_sup)?;
    if summary.units_run != 0 || summary.units_replayed != summary.units_total {
        return Err(format!(
            "resume stage: complete journal re-ran work (replayed {}, ran {})",
            summary.units_replayed, summary.units_run
        ));
    }
    if complete.to_json().dump() != straight_json {
        return Err("resume stage: replay-only report diverged from straight-through"
            .to_string());
    }
    let _ = std::fs::remove_file(&stump_a);
    let _ = std::fs::remove_file(&stump_b);
    println!(
        "chaos_check: resume stage: {replayed} units replayed from the amputated journal, \
         2/8-worker resumes and replay-only all byte-identical ({:.1}s)",
        t.elapsed().as_secs_f64()
    );
    let mut resume_stage = Json::obj();
    resume_stage.set("units_replayed", (replayed as u64).to_json());
    resume_stage.set("units_total", (summary.units_total as u64).to_json());
    results.set("resume_stage", resume_stage);

    if let Some(dir) = std::path::Path::new(out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let mut f =
        std::fs::File::create(out_path).map_err(|e| format!("{out_path}: {e}"))?;
    writeln!(f, "{}", results.pretty()).map_err(|e| format!("{out_path}: {e}"))?;
    println!("chaos_check: results written to {out_path}");
    Ok(())
}

fn main() -> ExitCode {
    let out = std::env::var("IOT_CHAOS_OUT")
        .unwrap_or_else(|_| "target/chaos_check.json".to_string());
    match check(&out) {
        Ok(()) => {
            println!("chaos_check: OK");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("chaos_check: FAIL — {e}");
            ExitCode::FAILURE
        }
    }
}
