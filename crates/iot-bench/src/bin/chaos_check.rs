//! Chaos gate: seeded fault injection swept over the pipeline, run by
//! `verify.sh`.
//!
//! Degraded captures are the *normal* case for months-long unattended
//! gateway captures (§3.2), so robustness is a gated property here, not
//! an aspiration. For each fault rate in the sweep this binary runs the
//! full pipeline over a degraded campaign and asserts:
//!
//! 1. **No escaped panics** — every run completes, including a stage
//!    with seeded ingest-panic injection, which must end in quarantine
//!    (`experiments_quarantined > 0`), never a crash.
//! 2. **Valid reports** — every report's JSON round-trips through the
//!    in-tree parser.
//! 3. **Exact accounting** — `IngestStats` reconciles: generated +
//!    duplicated == ingested + dropped + lost + quarantined, at every
//!    rate.
//! 4. **Determinism under faults** — for the same fault seed the faulted
//!    report is byte-identical across the serial and 1/2/8-worker
//!    drivers, and a clean (all-zero-rate) plan is a perfect identity
//!    against an unarmed run.
//! 5. **Bounded drift** — at low fault rates the headline metrics
//!    (destination counts, PII findings, encryption mix) stay close to
//!    the clean baseline; losing 0.1% of packets must not reshape the
//!    paper's tables.
//!
//! Environment:
//!
//! * `IOT_SCALE` — `quick` / `medium` / `full` grid (see `iot-bench`).
//! * `IOT_CHAOS_RATES` — comma-separated sweep override, e.g. `0.001,0.01`.
//! * `IOT_CHAOS_SEED` — fault seed (default `0xC4A05`).
//! * `IOT_CHAOS_OUT` — results JSON path (default `target/chaos_check.json`).
//!
//! Exits non-zero on any gate failure.

use iot_analysis::pipeline::{Pipeline, PipelineReport, INJECTED_PANIC_MSG};
use iot_bench::{campaign_config, scale};
use iot_chaos::FaultPlan;
use iot_core::json::{Json, ToJson};
use iot_testbed::schedule::CampaignConfig;
use std::io::Write;
use std::process::ExitCode;
use std::time::Instant;

/// Worker counts the faulted report must be byte-identical across.
const WORKER_GRID: [usize; 3] = [1, 2, 8];
/// Default sweep of uniform fault rates.
const DEFAULT_RATES: [f64; 3] = [0.001, 0.01, 0.05];
/// Rates at or below this are "low" and must respect the drift gates.
const LOW_RATE: f64 = 0.011;
/// Injected ingest-panic probability for the quarantine stage.
const PANIC_RATE: f64 = 0.05;

/// Drift ceilings at low rates, deliberately loose multiples of the
/// measured drift (recorded in EXPERIMENTS.md §drift) so routine noise
/// cannot flake the gate while a real regression still trips it.
const MAX_DEST_REL_DRIFT: f64 = 0.25;
const MAX_PII_REL_DRIFT: f64 = 0.35;
const MAX_MIX_DELTA_PTS: f64 = 8.0;

/// Headline metrics compared against the clean baseline.
#[derive(Debug, Clone, Copy)]
struct Headline {
    experiments: u64,
    support_total: u64,
    third_total: u64,
    pii_findings: u64,
    /// Max |percentage-point| spread helper: stored as the per-lab mix.
    us_mix: [f64; 3],
    uk_mix: [f64; 3],
}

fn headline(report: &PipelineReport) -> Headline {
    let sum = |m: &std::collections::HashMap<String, usize>| {
        m.values().map(|&v| v as u64).sum()
    };
    let mix = |lab: &str| {
        report
            .encryption_mix
            .get(lab)
            .copied()
            .unwrap_or([0.0; 3])
    };
    Headline {
        experiments: report.experiments,
        support_total: sum(&report.support_destinations),
        third_total: sum(&report.third_destinations),
        pii_findings: report.pii_findings.len() as u64,
        us_mix: mix("US"),
        uk_mix: mix("UK"),
    }
}

/// Relative drift |a/b - 1|, treating a zero baseline as infinite drift
/// unless the faulted value is also zero.
fn rel_drift(faulted: u64, baseline: u64) -> f64 {
    if baseline == 0 {
        if faulted == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (faulted as f64 / baseline as f64 - 1.0).abs()
    }
}

fn mix_delta(a: &Headline, b: &Headline) -> f64 {
    let mut worst = 0.0f64;
    for (x, y) in a.us_mix.iter().zip(&b.us_mix) {
        worst = worst.max((x - y).abs());
    }
    for (x, y) in a.uk_mix.iter().zip(&b.uk_mix) {
        worst = worst.max((x - y).abs());
    }
    worst
}

fn run(config: CampaignConfig, plan: Option<FaultPlan>, workers: Option<usize>) -> PipelineReport {
    let mut p = Pipeline::with_obs(false);
    if let Some(plan) = plan {
        p.set_fault_plan(plan);
    }
    match workers {
        None => p.run_campaign(config),
        Some(w) => p.run_campaign_parallel(config, w),
    }
    p.finish()
}

/// Gate 2: the report must serialize to JSON the in-tree parser accepts.
fn check_valid_json(label: &str, report: &PipelineReport) -> Result<String, String> {
    let dump = report.to_json().dump();
    Json::parse(&dump).map_err(|e| format!("{label}: report JSON invalid: {e}"))?;
    Ok(dump)
}

fn check(out_path: &str) -> Result<(), String> {
    // Injected panics are drills: silence exactly their payloads so the
    // log shows gate results, not hundreds of expected backtraces. Any
    // other panic message still prints — and gate 1 fails the run.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if msg.contains(INJECTED_PANIC_MSG) {
            return;
        }
        prev_hook(info);
    }));

    let scale = scale();
    let config = campaign_config(scale);
    let seed = std::env::var("IOT_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC4A05u64);
    let rates: Vec<f64> = match std::env::var("IOT_CHAOS_RATES") {
        Ok(s) => s
            .split(',')
            .map(|r| r.trim().parse().map_err(|e| format!("bad rate {r:?}: {e}")))
            .collect::<Result<_, _>>()?,
        Err(_) => DEFAULT_RATES.to_vec(),
    };
    println!(
        "chaos_check: scale={} seed={seed:#x} rates={rates:?}",
        scale.name()
    );

    let mut results = Json::obj();
    results.set("scale", Json::Str(scale.name().to_string()));
    results.set("seed", seed.to_json());

    // Clean baseline for identity and drift comparisons.
    let t = Instant::now();
    let baseline = run(config, None, None);
    let baseline_json = check_valid_json("baseline", &baseline)?;
    if !baseline.ingest.is_clean() || !baseline.ingest.reconciles() {
        return Err(format!(
            "baseline: clean run has a dirty ledger: {:?}",
            baseline.ingest
        ));
    }
    let base = headline(&baseline);
    println!(
        "chaos_check: baseline {} experiments, {} pii findings ({:.1}s)",
        base.experiments,
        base.pii_findings,
        t.elapsed().as_secs_f64()
    );

    // Gate 4a: an armed all-zero-rate plan is an exact identity.
    let armed_clean = run(config, Some(FaultPlan::clean(seed)), None);
    if check_valid_json("clean-plan", &armed_clean)? != baseline_json {
        return Err("clean fault plan changed the report: degrade→salvage \
                    round-trip is not an identity"
            .to_string());
    }
    println!("chaos_check: clean-plan identity OK");

    let mut sweep = Vec::new();
    for &rate in &rates {
        let t = Instant::now();
        let plan = FaultPlan::uniform(seed, rate);
        let serial = run(config, Some(plan), None);
        let serial_json = check_valid_json(&format!("rate {rate}"), &serial)?;
        let ingest = &serial.ingest;

        // Gate 3: exact packet accounting.
        if !ingest.reconciles() {
            return Err(format!("rate {rate}: ledger does not reconcile: {ingest:?}"));
        }
        if rate > 0.0 && ingest.is_clean() {
            return Err(format!("rate {rate}: faults never fired: {ingest:?}"));
        }
        // Panic injection is off in this stage, so no experiment may be
        // lost — degraded, but always analyzed.
        if ingest.experiments_quarantined != 0 || ingest.shards_quarantined != 0 {
            return Err(format!("rate {rate}: unexpected quarantine: {ingest:?}"));
        }
        if serial.experiments != base.experiments {
            return Err(format!(
                "rate {rate}: experiment count changed ({} vs {})",
                serial.experiments, base.experiments
            ));
        }

        // Gate 4b: byte-identity across drivers under faults.
        for workers in WORKER_GRID {
            let parallel = run(config, Some(plan), Some(workers));
            if parallel.to_json().dump() != serial_json {
                return Err(format!(
                    "rate {rate}: {workers}-worker report diverged from serial"
                ));
            }
        }

        // Gate 5: bounded drift at low rates.
        let h = headline(&serial);
        let support_drift = rel_drift(h.support_total, base.support_total);
        let third_drift = rel_drift(h.third_total, base.third_total);
        let pii_drift = rel_drift(h.pii_findings, base.pii_findings);
        let mix_pts = mix_delta(&h, &base);
        println!(
            "chaos_check: rate {rate}: dropped {} lost {} truncated {} resyncs {} | \
             drift support {:.3} third {:.3} pii {:.3} mix {:.2}pts ({:.1}s)",
            ingest.packets_dropped,
            ingest.packets_lost,
            ingest.packets_truncated,
            ingest.salvage_resyncs,
            support_drift,
            third_drift,
            pii_drift,
            mix_pts,
            t.elapsed().as_secs_f64()
        );
        if rate <= LOW_RATE {
            if support_drift > MAX_DEST_REL_DRIFT || third_drift > MAX_DEST_REL_DRIFT {
                return Err(format!(
                    "rate {rate}: destination drift {support_drift:.3}/{third_drift:.3} \
                     exceeds {MAX_DEST_REL_DRIFT}"
                ));
            }
            if pii_drift > MAX_PII_REL_DRIFT {
                return Err(format!(
                    "rate {rate}: PII drift {pii_drift:.3} exceeds {MAX_PII_REL_DRIFT}"
                ));
            }
            if mix_pts > MAX_MIX_DELTA_PTS {
                return Err(format!(
                    "rate {rate}: encryption mix moved {mix_pts:.2} points \
                     (max {MAX_MIX_DELTA_PTS})"
                ));
            }
        }

        let mut entry = Json::obj();
        entry.set("rate", rate.to_json());
        entry.set("ingest", ingest.to_json());
        entry.set("support_drift", support_drift.to_json());
        entry.set("third_drift", third_drift.to_json());
        entry.set("pii_drift", pii_drift.to_json());
        entry.set("mix_delta_pts", mix_pts.to_json());
        entry.set("parallel_identical", Json::Bool(true));
        sweep.push(entry);
    }
    results.set("sweep", Json::Arr(sweep));

    // Gate 1 (hard part): seeded ingest panics end in quarantine, with
    // the run surviving and still deterministic across drivers.
    let t = Instant::now();
    let panic_plan = FaultPlan {
        panic_rate: PANIC_RATE,
        ..FaultPlan::uniform(seed, 0.01)
    };
    let serial = run(config, Some(panic_plan), None);
    let serial_json = check_valid_json("panic stage", &serial)?;
    let ingest = &serial.ingest;
    if ingest.experiments_quarantined == 0 {
        return Err(format!(
            "panic stage: panic_rate {PANIC_RATE} quarantined nothing: {ingest:?}"
        ));
    }
    if !ingest.reconciles() {
        return Err(format!("panic stage: ledger does not reconcile: {ingest:?}"));
    }
    if serial.experiments + ingest.experiments_quarantined != base.experiments {
        return Err(format!(
            "panic stage: {} analyzed + {} quarantined != {} generated",
            serial.experiments, ingest.experiments_quarantined, base.experiments
        ));
    }
    for workers in WORKER_GRID {
        let parallel = run(config, Some(panic_plan), Some(workers));
        if parallel.to_json().dump() != serial_json {
            return Err(format!(
                "panic stage: {workers}-worker report diverged from serial"
            ));
        }
    }
    println!(
        "chaos_check: panic stage: {} of {} experiments quarantined, run survived ({:.1}s)",
        ingest.experiments_quarantined,
        base.experiments,
        t.elapsed().as_secs_f64()
    );
    let mut panic_stage = Json::obj();
    panic_stage.set("panic_rate", PANIC_RATE.to_json());
    panic_stage.set("ingest", ingest.to_json());
    results.set("panic_stage", panic_stage);

    if let Some(dir) = std::path::Path::new(out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let mut f =
        std::fs::File::create(out_path).map_err(|e| format!("{out_path}: {e}"))?;
    writeln!(f, "{}", results.pretty()).map_err(|e| format!("{out_path}: {e}"))?;
    println!("chaos_check: results written to {out_path}");
    Ok(())
}

fn main() -> ExitCode {
    let out = std::env::var("IOT_CHAOS_OUT")
        .unwrap_or_else(|_| "target/chaos_check.json".to_string());
    match check(&out) {
        Ok(()) => {
            println!("chaos_check: OK");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("chaos_check: FAIL — {e}");
            ExitCode::FAILURE
        }
    }
}
