//! Table 2: number of non-first parties contacted by devices, grouped by
//! experiment type and party type, across labs and VPN egress.

use iot_analysis::destinations::{ColumnCtx, ExpGroup};
use iot_analysis::report::TextTable;
use iot_geodb::party::PartyType;

fn main() {
    let scale = iot_bench::scale();
    iot_obs::progress!("building corpus at {scale:?} scale…");
    let corpus = iot_bench::build_corpus(iot_bench::campaign_config(scale));
    iot_obs::progress!("ingested {} experiments", corpus.experiments);

    let columns = ColumnCtx::standard();
    let mut headers = vec!["Experiment", "Party"];
    let header_strings: Vec<String> = columns.iter().map(|c| c.header()).collect();
    headers.extend(header_strings.iter().map(|s| s.as_str()));
    let mut table = TextTable::new("Table 2: non-first parties by experiment type", &headers);

    for &group in ExpGroup::all() {
        for party in [PartyType::Support, PartyType::Third] {
            let mut row = vec![group.name().to_string(), party.to_string()];
            for ctx in columns {
                row.push(
                    corpus
                        .destinations
                        .unique_destinations(ctx, group, party)
                        .to_string(),
                );
            }
            table.row(row);
        }
    }
    for party in [PartyType::Support, PartyType::Third] {
        let mut row = vec!["Total".to_string(), party.to_string()];
        for ctx in columns {
            row.push(
                corpus
                    .destinations
                    .unique_destinations_total(ctx, party)
                    .to_string(),
            );
        }
        table.row(row);
    }

    iot_bench::emit(
        "table2",
        &table,
        "US Total: support 98 / third 7; UK Total: support 87 / third 5; control > other \
         experiment types; power experiments drive most third-party contacts",
    );
}
