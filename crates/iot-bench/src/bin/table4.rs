//! Table 4: organizations contacted (as non-first parties) by the largest
//! numbers of devices, plus the per-device destination-count ranking of
//! §4.2.

use iot_analysis::destinations::ColumnCtx;
use iot_analysis::report::TextTable;
use iot_testbed::lab::LabSite;
use std::collections::BTreeMap;

fn main() {
    let scale = iot_bench::scale();
    iot_obs::progress!("building corpus at {scale:?} scale…");
    let corpus = iot_bench::build_corpus(iot_bench::campaign_config(scale));

    let columns = ColumnCtx::standard();
    // Collect per-context org→devices maps, then rank orgs by the US count.
    let per_ctx: Vec<BTreeMap<&'static str, usize>> = columns
        .iter()
        .map(|&ctx| corpus.destinations.org_device_counts(ctx).into_iter().collect())
        .collect();
    let mut ranked: Vec<(&'static str, usize)> =
        corpus.destinations.org_device_counts(columns[0]);
    ranked.truncate(10);

    let mut headers = vec!["Organization"];
    let header_strings: Vec<String> = columns.iter().map(|c| c.header()).collect();
    headers.extend(header_strings.iter().map(|s| s.as_str()));
    let mut table = TextTable::new("Table 4: organizations contacted by multiple devices", &headers);
    for (org, _) in &ranked {
        let mut row = vec![org.to_string()];
        for ctx_map in &per_ctx {
            row.push(ctx_map.get(org).copied().unwrap_or(0).to_string());
        }
        table.row(row);
    }
    iot_bench::emit(
        "table4",
        &table,
        "Amazon tops the list (31 US / 24 UK devices), followed by Google, Akamai, \
         Microsoft; Chinese clouds (Kingsoft, 21Vianet, Alibaba) serve Chinese devices",
    );

    // §4.2: devices ranked by unique destination count.
    let mut dev_table = TextTable::new(
        "§4.2: devices contacting the most unique destinations (US lab)",
        &["Device", "Destinations"],
    );
    let counts = corpus
        .destinations
        .device_destination_counts(ColumnCtx {
            site: LabSite::Us,
            vpn: false,
            common_only: false,
        });
    for (device, n) in counts.iter().take(8) {
        dev_table.row(vec![device.to_string(), n.to_string()]);
    }
    iot_bench::emit(
        "table4_devices",
        &dev_table,
        "Wansview camera contacts the most destinations (52), then Samsung TV (30), \
         Roku TV (15), TP-Link plug (13)",
    );
}
