//! Table 11: activity instances detected in idle traffic using only
//! high-confidence (F1 > 0.9) models.

use iot_analysis::inference::train_device_model;
use iot_analysis::report::TextTable;
use iot_analysis::unexpected::{detect_activities, detection_counts};
use iot_geodb::registry::GeoDb;
use iot_testbed::experiment::run_idle;
use iot_testbed::lab::LabSite;
use std::collections::BTreeMap;

fn main() {
    let scale = iot_bench::scale();
    let config = iot_bench::inference_config(scale);
    let campaign = iot_bench::training_campaign(scale);
    let idle_hours = match scale {
        iot_bench::Scale::Quick => 2.0,
        iot_bench::Scale::Medium => 8.0,
        iot_bench::Scale::Full => 28.0,
    };
    let db = GeoDb::new();

    // (device, activity-label) → [US, UK, US→UK, UK→US] counts
    let mut rows: BTreeMap<(String, String), [usize; 4]> = BTreeMap::new();
    let mut gated = 0usize;
    let mut total_models = 0usize;
    for lab in campaign.labs() {
        for device in &lab.devices {
            for (col, vpn) in [(false, false), (true, true)] {
                let _ = col;
                let vpn = vpn; // columns: native and VPN egress
                let column = match (device.site, vpn) {
                    (LabSite::Us, false) => 0usize,
                    (LabSite::Uk, false) => 1,
                    (LabSite::Us, true) => 2,
                    (LabSite::Uk, true) => 3,
                };
                iot_obs::progress!(
                    "  training {} @ {:?} vpn={}",
                    device.spec().name,
                    device.site,
                    vpn
                );
                let model = train_device_model(&db, &campaign, device, vpn, &config);
                total_models += 1;
                let idle = run_idle(&db, device, vpn, idle_hours, 0);
                match detect_activities(&model, &idle.packets) {
                    None => {
                        gated += 1;
                    }
                    Some(detections) => {
                        for (label, count) in detection_counts(&detections) {
                            rows.entry((device.spec().name.to_string(), label))
                                .or_insert([0; 4])[column] += count;
                        }
                    }
                }
            }
        }
    }

    let mut table = TextTable::new(
        format!("Table 11: detected activity instances in {idle_hours}h idle (F1>0.9 models)"),
        &["Device", "Activity", "US", "UK", "US→UK", "UK→US"],
    );
    let mut sorted: Vec<_> = rows.into_iter().collect();
    sorted.sort_by_key(|(_, counts)| std::cmp::Reverse(counts.iter().sum::<usize>()));
    for ((device, label), counts) in sorted {
        if counts.iter().sum::<usize>() < 2 {
            continue; // the paper omits activities with <3 instances
        }
        table.row(vec![
            device,
            label,
            counts[0].to_string(),
            counts[1].to_string(),
            counts[2].to_string(),
            counts[3].to_string(),
        ]);
    }
    println!(
        "({gated}/{total_models} device models below the F1>0.9 gate were excluded)\n"
    );
    iot_bench::emit(
        "table11",
        &table,
        "Zmodo doorbell dominates (1845 idle 'move' detections in 28h); Wansview camera \
         ~114-130 moves; TVs refresh menus; reconnect-prone devices (Sous Vide: 65 UK) \
         produce spurious 'power' events",
    );
}
