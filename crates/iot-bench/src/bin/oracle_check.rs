//! Correctness-oracle gate, run by `verify.sh`.
//!
//! Byte-identical reports across drivers (gated by `bench_pipeline` and
//! `chaos_check`) prove the pipeline is *consistent*; they cannot prove
//! the numbers are *right*. This binary runs the `iot-oracle` harness,
//! which checks properties that hold regardless of what the correct
//! values are:
//!
//! 1. **Invariants** — the ingest ledger reconciles, per-lab encryption
//!    percentages sum to 100, every PII finding names a cataloged device
//!    deployed at its site, findings arrive sorted, and every derived
//!    report field recounts exactly from the live accumulators. Table 11
//!    and §7.3 laws are exercised on a simulated user study.
//! 2. **Metamorphic relations** — permuting experiment order or
//!    relabeling repetition indices leaves the report byte-identical;
//!    removing one device removes exactly that device's rows; adding
//!    the VPN dimension leaves native-egress fields untouched.
//! 3. **Differential runs** — 1/2/8-worker and chaos-clean-plan drivers
//!    against the serial baseline, with divergences named by table, row,
//!    and field.
//!
//! Environment:
//!
//! * `IOT_SCALE` — `quick` / `medium` / `full` campaign (see `iot-bench`).
//! * `IOT_ORACLE_OUT` — results JSON path (default `target/oracle_check.json`).
//!
//! Exits non-zero on any violation.

use iot_bench::{campaign_config, scale};
use iot_core::json::ToJson;
use iot_oracle::run_oracle;
use std::io::Write;
use std::process::ExitCode;
use std::time::Instant;

fn check(out_path: &str) -> Result<(), String> {
    let scale = scale();
    let config = campaign_config(scale);
    println!("oracle_check: scale={}", scale.name());

    let t = Instant::now();
    let outcome = run_oracle(config);
    println!(
        "oracle_check: {} ({:.1}s)",
        outcome.summary(),
        t.elapsed().as_secs_f64()
    );

    let mut results = outcome.to_json();
    results.set("scale", scale.name().to_json());
    if let Some(dir) = std::path::Path::new(out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let mut f = std::fs::File::create(out_path).map_err(|e| format!("{out_path}: {e}"))?;
    writeln!(f, "{}", results.pretty()).map_err(|e| format!("{out_path}: {e}"))?;
    println!("oracle_check: results written to {out_path}");

    if !outcome.is_clean() {
        return Err(format!(
            "{} violations (invariants {}, metamorphic {}, differential {})",
            outcome.total(),
            outcome.invariant.len(),
            outcome.metamorphic.len(),
            outcome.differential.len()
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let out = std::env::var("IOT_ORACLE_OUT")
        .unwrap_or_else(|_| "target/oracle_check.json".to_string());
    match check(&out) {
        Ok(()) => {
            println!("oracle_check: OK");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("oracle_check: FAIL — {e}");
            ExitCode::FAILURE
        }
    }
}
