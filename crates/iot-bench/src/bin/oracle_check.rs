//! Correctness-oracle gate, run by `verify.sh`.
//!
//! Byte-identical reports across drivers (gated by `bench_pipeline` and
//! `chaos_check`) prove the pipeline is *consistent*; they cannot prove
//! the numbers are *right*. This binary runs the `iot-oracle` harness,
//! which checks properties that hold regardless of what the correct
//! values are:
//!
//! 1. **Invariants** — the ingest ledger reconciles, per-lab encryption
//!    percentages sum to 100, every PII finding names a cataloged device
//!    deployed at its site, findings arrive sorted, and every derived
//!    report field recounts exactly from the live accumulators. Table 11
//!    and §7.3 laws are exercised on a simulated user study.
//! 2. **Metamorphic relations** — permuting experiment order or
//!    relabeling repetition indices leaves the report byte-identical;
//!    removing one device removes exactly that device's rows; adding
//!    the VPN dimension leaves native-egress fields untouched.
//! 3. **Differential runs** — 1/2/8-worker and chaos-clean-plan drivers
//!    against the serial baseline, with divergences named by table, row,
//!    and field.
//!
//! Environment:
//!
//! * `IOT_SCALE` — `quick` / `medium` / `full` campaign (see `iot-bench`).
//! * `IOT_ORACLE_OUT` — results JSON path (default `target/oracle_check.json`).
//!
//! Exits non-zero on any violation.

use iot_bench::{campaign_config, scale};
use iot_core::json::{Json, ToJson};
use iot_oracle::{results, run_oracle, Violation};
use std::io::Write;
use std::process::ExitCode;
use std::time::Instant;

fn check(out_path: &str) -> Result<(), String> {
    let scale = scale();
    let config = campaign_config(scale);
    println!("oracle_check: scale={}", scale.name());
    // Resolve the obs config up front so IOT_OBS_ALLOC=1 turns heap
    // counting on before the campaign allocates anything.
    iot_obs::enabled();

    let t = Instant::now();
    let outcome = run_oracle(config);
    println!(
        "oracle_check: {} ({:.1}s)",
        outcome.summary(),
        t.elapsed().as_secs_f64()
    );
    // Campaign memory footprint at this scale, when the instrumented
    // allocator is counting (IOT_OBS_ALLOC=1) — the number the nightly
    // medium-scale run exists to surface.
    if iot_obs::alloc::enabled() {
        let high_water = iot_obs::alloc::process_high_water_bytes();
        let rss = iot_obs::process::peak_rss_bytes().unwrap_or(0);
        println!(
            "oracle_check: heap high-water {:.1} MB, kernel peak RSS {:.1} MB",
            high_water as f64 / 1e6,
            rss as f64 / 1e6
        );
    }

    // Fourth pillar: the committed `results/*.json` table artifacts —
    // well-formed `emit` shape, row counts pinned by the catalog/enums,
    // percentage columns summing within rounding tolerance.
    let results_dir = std::env::var("IOT_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    let artifact_violations = results::check_results_dir(std::path::Path::new(&results_dir));
    println!(
        "oracle_check: results artifacts ({results_dir}/): {}",
        if artifact_violations.is_empty() {
            "clean".to_string()
        } else {
            format!("{} violations", artifact_violations.len())
        }
    );
    for v in &artifact_violations {
        eprintln!("  {}", v.render());
    }

    let mut results = outcome.to_json();
    results.set("scale", scale.name().to_json());
    results.set(
        "results_artifacts",
        Json::Arr(artifact_violations.iter().map(Violation::to_json).collect()),
    );
    if let Some(dir) = std::path::Path::new(out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let mut f = std::fs::File::create(out_path).map_err(|e| format!("{out_path}: {e}"))?;
    writeln!(f, "{}", results.pretty()).map_err(|e| format!("{out_path}: {e}"))?;
    println!("oracle_check: results written to {out_path}");

    if !outcome.is_clean() || !artifact_violations.is_empty() {
        return Err(format!(
            "{} violations (invariants {}, metamorphic {}, differential {}, \
             results artifacts {})",
            outcome.total() + artifact_violations.len(),
            outcome.invariant.len(),
            outcome.metamorphic.len(),
            outcome.differential.len(),
            artifact_violations.len()
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let out = std::env::var("IOT_ORACLE_OUT")
        .unwrap_or_else(|_| "target/oracle_check.json".to_string());
    match check(&out) {
        Ok(()) => {
            println!("oracle_check: OK");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("oracle_check: FAIL — {e}");
            ExitCode::FAILURE
        }
    }
}
