//! Table 7: per-device average percentage of unencrypted bytes, with
//! Welch-test significance marks: `*` for US-vs-UK differences (the
//! paper's italics), `!` for native-vs-VPN differences (the paper's bold).

use iot_analysis::regional::significantly_different;
use iot_analysis::report::{pct, TextTable};
use iot_testbed::lab::LabSite;

fn main() {
    let scale = iot_bench::scale();
    iot_obs::progress!("building corpus at {scale:?} scale…");
    let corpus = iot_bench::build_corpus(iot_bench::campaign_config(scale));

    // The paper's Table 7 device list.
    let devices = [
        "TP-Link Plug",
        "TP-Link Bulb",
        "Nest Thermostat",
        "Smartthings Hub",
        "Samsung TV",
        "Echo Spot",
        "Echo Plus",
        "Fire TV",
        "Echo Dot",
        "Yi Cam",
        "Samsung Dryer",
        "Samsung Washer",
        "D-Link Movement Sensor",
    ];
    let mut table = TextTable::new(
        "Table 7: average % unencrypted bytes per device",
        &["Device", "US", "UK", "US→UK", "UK→US", "sig"],
    );
    for name in devices {
        let cell = |site: LabSite, vpn: bool| {
            corpus
                .encryption
                .device_unencrypted_percent(name, site, vpn)
                .map(pct)
                .unwrap_or_else(|| "-".to_string())
        };
        let empty = Vec::new();
        let sample = |site: LabSite, vpn: bool| {
            corpus
                .unenc_samples
                .get(&(site, vpn, iot_testbed::catalog::by_name(name).unwrap().name))
                .unwrap_or(&empty)
                .clone()
        };
        let mut marks = String::new();
        if significantly_different(&sample(LabSite::Us, false), &sample(LabSite::Uk, false)) {
            marks.push('*'); // italic in the paper: US vs UK
        }
        if significantly_different(&sample(LabSite::Us, false), &sample(LabSite::Us, true))
            || significantly_different(&sample(LabSite::Uk, false), &sample(LabSite::Uk, true))
        {
            marks.push('!'); // bold in the paper: native vs VPN
        }
        table.row(vec![
            name.to_string(),
            cell(LabSite::Us, false),
            cell(LabSite::Uk, false),
            cell(LabSite::Us, true),
            cell(LabSite::Uk, true),
            marks,
        ]);
    }
    iot_bench::emit(
        "table7",
        &table,
        "TP-Link plug 18.6/8.7%, bulb 13.1/12.8%, Nest 11.6/15.8%, Smartthings 6.7/16.6% \
         (significant US-vs-UK), Samsung TV 7.1/4.5% (significant VPN effect), laundry \
         pair ~28% (US only), D-Link sensor 14.9%",
    );
}
