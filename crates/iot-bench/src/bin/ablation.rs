//! Ablations for the design choices DESIGN.md calls out:
//!
//! 1. entropy thresholds (the paper's 0.4/0.8 vs alternatives),
//! 2. the 2-second traffic-unit gap of §7.1,
//! 3. random-forest size,
//! 4. Passport-style geolocation vs the naive database.

use iot_analysis::inference::build_dataset;
use iot_analysis::report::TextTable;
use iot_analysis::unexpected::segment_units;
use iot_entropy::generators::{self, TextStyle};
use iot_entropy::{mean_packet_entropy, EncryptionClass, Thresholds};
use iot_geodb::geo::Region;
use iot_geodb::passport;
use iot_geodb::registry::GeoDb;
use iot_ml::crossval::cross_validate;
use iot_ml::forest::RandomForestConfig;
use iot_testbed::experiment::run_idle;
use iot_testbed::lab::{Lab, LabSite};

/// Misclassification rate of a threshold pair against ground truth, over
/// realistic *mixed* flows: encrypted traffic is raw or base64-coded
/// ciphertext; plaintext traffic is telemetry or markup with an admixture
/// of embedded binary (thumbnails, compressed blobs); media is plaintext
/// that looks random. The undetermined class is counted separately — the
/// paper accepts undetermined traffic to keep the error rate down.
fn threshold_error(t: &Thresholds) -> (f64, f64) {
    let mut wrong = 0usize;
    let mut undetermined = 0usize;
    let total = 600usize;
    let mut judge = |h: f64, truth_encrypted: bool| match (t.classify_value(h), truth_encrypted) {
        (EncryptionClass::Unknown, _) => undetermined += 1,
        (EncryptionClass::LikelyEncrypted, false) | (EncryptionClass::LikelyUnencrypted, true) => {
            wrong += 1
        }
        _ => {}
    };
    for i in 0..total / 3 {
        let mut rng = generators::rng(i as u64);
        // Encrypted: half TLS-like, half fernet-like tokens.
        let enc = if i % 2 == 0 {
            generators::ciphertext(&mut rng, 160 * 8)
        } else {
            generators::fernet_like(&mut rng, 160 * 8)
        };
        judge(mean_packet_entropy(enc.chunks(160)), true);
        // Plaintext: text with 0–35% embedded binary content.
        let style = if i % 2 == 0 { TextStyle::Telemetry } else { TextStyle::WebPage };
        let binary_frac = rng.gen_range(0.0..0.35);
        let text_len = (160.0 * 8.0 * (1.0 - binary_frac)) as usize;
        let mut plain = generators::text_like(&mut rng, text_len, style);
        plain.extend(generators::ciphertext(&mut rng, 160 * 8 - text_len));
        judge(mean_packet_entropy(plain.chunks(160)), false);
        // Media: plaintext whose bytes look random (defeats any threshold).
        let media = generators::media_like(&mut rng, 160 * 8);
        judge(mean_packet_entropy(media.chunks(160)), false);
    }
    (
        wrong as f64 / total as f64,
        undetermined as f64 / total as f64,
    )
}

fn main() {
    // 1. Entropy threshold sweep.
    let mut t1 = TextTable::new(
        "Ablation 1: entropy thresholds vs generator ground truth",
        &["low", "high", "error rate", "undetermined rate"],
    );
    for (low, high) in [
        (0.3, 0.9),
        (0.4, 0.8), // the paper's choice
        (0.5, 0.7),
        (0.55, 0.6),
        (0.2, 0.95),
    ] {
        let (err, und) = threshold_error(&Thresholds::new(low, high));
        t1.row(vec![
            format!("{low}"),
            format!("{high}"),
            format!("{:.3}", err),
            format!("{:.3}", und),
        ]);
    }
    iot_bench::emit(
        "ablation_thresholds",
        &t1,
        "the paper chose 0.4/0.8 'to reduce false positives/negatives while relegating \
         remaining cases to an undetermined class' — tighter bands cut undetermined \
         traffic at the cost of misclassification",
    );

    // 2. Traffic-unit gap sweep on a real idle capture.
    let db = GeoDb::new();
    let lab = Lab::deploy(LabSite::Us);
    let zmodo = lab.device("Zmodo Doorbell").unwrap();
    let idle = run_idle(&db, zmodo, false, 4.0, 0);
    let mut t2 = TextTable::new(
        "Ablation 2: traffic-unit gap (Zmodo idle, 4h)",
        &["gap (s)", "units", "mean packets/unit"],
    );
    for gap in [0.5, 1.0, 2.0, 4.0, 8.0] {
        let units = segment_units(&idle.packets, gap);
        let mean = if units.is_empty() {
            0.0
        } else {
            units.iter().map(|u| u.len()).sum::<usize>() as f64 / units.len() as f64
        };
        t2.row(vec![
            format!("{gap}"),
            units.len().to_string(),
            format!("{mean:.1}"),
        ]);
    }
    iot_bench::emit(
        "ablation_unit_gap",
        &t2,
        "§7.1: 'a value that is too small provides too little data for classification; a \
         value that is too large may merge traffic together from multiple activities' — \
         2 s balances the two",
    );

    // 3. Forest size sweep on one device's corpus.
    let mut experiments = Vec::new();
    let cam = lab.device("Wansview Cam").unwrap();
    let train_campaign = iot_bench::training_campaign(iot_bench::Scale::Quick);
    train_campaign.run_device(&db, cam, false, |e| experiments.push(e));
    let dataset = build_dataset(&experiments);
    let mut t3 = TextTable::new(
        "Ablation 3: forest size vs cross-validated F1 (Wansview)",
        &["trees", "macro F1"],
    );
    for n_trees in [1, 5, 10, 30, 60] {
        let report = cross_validate(
            &dataset,
            &RandomForestConfig {
                n_trees,
                ..RandomForestConfig::default()
            },
            3,
        );
        t3.row(vec![n_trees.to_string(), format!("{:.3}", report.macro_f1)]);
    }
    iot_bench::emit(
        "ablation_forest",
        &t3,
        "F1 saturates quickly with tree count; the paper's accuracy claims are not \
         sensitive to forest size",
    );

    // 4. Passport vs naive geolocation.
    let hosts = [
        "api.amazon.com",
        "s3.amazonaws.com",
        "clients.google.com",
        "cache.akamai.net",
        "api.ksyun.com",
        "mqtt.aliyun.com",
        "updates.tplinkcloud.com",
        "api.netflix.com",
        "hub.meethue.com",
        "api.netatmo.net",
        "api.smarter.am",
        "cdn.fastly.net",
    ];
    let mut t4 = TextTable::new(
        "Ablation 4: geolocation method accuracy",
        &["egress", "passport", "naive db"],
    );
    for egress in [Region::Americas, Region::Europe] {
        let targets: Vec<_> = hosts.iter().map(|h| db.resolve(h, egress).unwrap()).collect();
        let p = passport::accuracy(&db, &targets, egress, passport::infer_country);
        let n = passport::accuracy(&db, &targets, egress, |db, ip, _| db.naive_country(ip));
        t4.row(vec![
            egress.to_string(),
            format!("{:.2}", p),
            format!("{:.2}", n),
        ]);
    }
    iot_bench::emit(
        "ablation_geo",
        &t4,
        "§4.1: 'We do not use public geolocation databases alone, which we found to be \
         highly inaccurate' — the traceroute-informed method recovers replica countries",
    );

    // 5. Feature-set ablation: size+timing (paper) vs timing-only.
    let mut t5 = TextTable::new(
        "Ablation 5: feature families vs F1 (Wansview)",
        &["features", "macro F1"],
    );
    let full = cross_validate(&dataset, &RandomForestConfig::default(), 3);
    // Timing-only: zero out the 14 size statistics.
    let mut timing_only = dataset.clone();
    for row in &mut timing_only.features {
        for v in row.iter_mut().take(iot_ml::stats::STATS_PER_DISTRIBUTION) {
            *v = 0.0;
        }
    }
    let timing = cross_validate(&timing_only, &RandomForestConfig::default(), 3);
    t5.row(vec!["sizes + inter-arrival (paper)".into(), format!("{:.3}", full.macro_f1)]);
    t5.row(vec!["inter-arrival only".into(), format!("{:.3}", timing.macro_f1)]);
    iot_bench::emit(
        "ablation_features",
        &t5,
        "the paper uses both packet-size and inter-arrival statistics; dropping sizes \
         costs accuracy",
    );
}
