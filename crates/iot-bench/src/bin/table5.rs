//! Table 5: number of devices per encryption-percentage quartile
//! (unencrypted ✗ / encrypted ✓ / unknown ?) across labs and VPN egress.

use iot_analysis::report::TextTable;
use iot_entropy::EncryptionClass;
use iot_testbed::lab::LabSite;

fn main() {
    let scale = iot_bench::scale();
    iot_obs::progress!("building corpus at {scale:?} scale…");
    let corpus = iot_bench::build_corpus(iot_bench::campaign_config(scale));

    let contexts: [(LabSite, bool, bool); 8] = [
        (LabSite::Us, false, false),
        (LabSite::Uk, false, false),
        (LabSite::Us, false, true),
        (LabSite::Uk, false, true),
        (LabSite::Us, true, false),
        (LabSite::Uk, true, false),
        (LabSite::Us, true, true),
        (LabSite::Uk, true, true),
    ];
    let headers = [
        "Enc", "Range", "US", "UK", "US∩", "UK∩", "US→UK", "UK→US", "US→UK∩", "UK→US∩",
    ];
    let mut table = TextTable::new("Table 5: devices by encryption percentage quartile", &headers);
    let ranges = [">75", "50-75", "25-50", "<25"];
    for (class, sym) in [
        (EncryptionClass::LikelyUnencrypted, "x"),
        (EncryptionClass::LikelyEncrypted, "enc"),
        (EncryptionClass::Unknown, "?"),
    ] {
        let hists: Vec<[usize; 4]> = contexts
            .iter()
            .map(|&(site, vpn, common)| corpus.encryption.quartile_histogram(site, vpn, common, class))
            .collect();
        for (i, range) in ranges.iter().enumerate() {
            let mut row = vec![sym.to_string(), range.to_string()];
            for hist in &hists {
                row.push(hist[i].to_string());
            }
            table.row(row);
        }
    }
    iot_bench::emit(
        "table5",
        &table,
        "no device exceeds 75% unencrypted; 7 devices per lab exceed 75% encrypted; all \
         but ~10 devices have >25% unknown traffic",
    );
}
