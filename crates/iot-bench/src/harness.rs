//! In-tree micro/macro benchmark harness.
//!
//! Replaces the external `criterion` dependency with the minimal thing
//! the repo actually needs: run a closure a fixed number of warmup and
//! timed iterations, report median / p95 / min / max wall-clock times,
//! and serialize the result into the in-tree JSON type so benchmark
//! trajectories can be committed and diffed.

use iot_core::json::{Json, ToJson};
use std::time::Instant;

/// Timing summary of one benchmarked operation.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark label.
    pub name: String,
    /// Timed iterations (excludes warmup).
    pub iters: usize,
    /// Per-iteration wall-clock times, milliseconds, in run order.
    pub times_ms: Vec<f64>,
    /// `times_ms` sorted ascending, computed once at construction so
    /// every quantile query is a plain index.
    sorted_ms: Vec<f64>,
}

impl BenchResult {
    /// Builds a result, pre-sorting the sample for quantile queries.
    pub fn new(name: String, iters: usize, times_ms: Vec<f64>) -> Self {
        let mut sorted_ms = times_ms.clone();
        sorted_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
        BenchResult {
            name,
            iters,
            times_ms,
            sorted_ms,
        }
    }

    /// q-th quantile (0–1) of the recorded times, nearest-rank on the
    /// sorted sample.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        let sorted = &self.sorted_ms;
        if sorted.is_empty() {
            return 0.0;
        }
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Median wall-clock time.
    pub fn median_ms(&self) -> f64 {
        self.quantile_ms(0.5)
    }

    /// 95th-percentile wall-clock time.
    pub fn p95_ms(&self) -> f64 {
        self.quantile_ms(0.95)
    }

    /// Fastest iteration.
    pub fn min_ms(&self) -> f64 {
        self.sorted_ms.first().copied().unwrap_or(f64::INFINITY)
    }

    /// Slowest iteration.
    pub fn max_ms(&self) -> f64 {
        self.sorted_ms.last().copied().unwrap_or(0.0)
    }
}

impl ToJson for BenchResult {
    fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.set("name", self.name.to_json());
        j.set("iters", self.iters.to_json());
        j.set("median_ms", self.median_ms().to_json());
        j.set("p95_ms", self.p95_ms().to_json());
        j.set("min_ms", self.min_ms().to_json());
        j.set("max_ms", self.max_ms().to_json());
        j.set("times_ms", self.times_ms.to_json());
        j
    }
}

/// Runs `op` for `warmup` untimed and `iters` timed iterations and
/// returns the timing summary. The closure's return value is passed to
/// `std::hint::black_box` so the optimizer cannot elide the work.
pub fn bench<T, F: FnMut() -> T>(
    name: &str,
    warmup: usize,
    iters: usize,
    mut op: F,
) -> BenchResult {
    assert!(iters > 0, "at least one timed iteration");
    for _ in 0..warmup {
        std::hint::black_box(op());
    }
    let mut times_ms = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        std::hint::black_box(op());
        times_ms.push(start.elapsed().as_secs_f64() * 1e3);
    }
    BenchResult::new(name.to_string(), iters, times_ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_requested_iterations() {
        let mut runs = 0u32;
        let r = bench("noop", 2, 5, || {
            runs += 1;
            runs
        });
        assert_eq!(runs, 7, "2 warmup + 5 timed");
        assert_eq!(r.iters, 5);
        assert_eq!(r.times_ms.len(), 5);
        assert!(r.min_ms() <= r.median_ms());
        assert!(r.median_ms() <= r.p95_ms());
        assert!(r.p95_ms() <= r.max_ms());
    }

    #[test]
    fn quantiles_on_known_sample() {
        let r = BenchResult::new("x".into(), 4, vec![4.0, 1.0, 3.0, 2.0]);
        assert_eq!(r.median_ms(), 2.0);
        assert_eq!(r.p95_ms(), 4.0);
        assert_eq!(r.min_ms(), 1.0);
        assert_eq!(r.max_ms(), 4.0);
        // Run order is preserved alongside the sorted view.
        assert_eq!(r.times_ms, vec![4.0, 1.0, 3.0, 2.0]);
    }

    #[test]
    fn result_serializes() {
        let r = BenchResult::new("x".into(), 1, vec![1.5]);
        let s = r.to_json().dump();
        assert!(s.contains("\"median_ms\":1.5"), "{s}");
    }
}
