//! Shared harness for the table/figure regeneration binaries.
//!
//! Every binary accepts the `IOT_SCALE` environment variable:
//!
//! * `quick` — a minimal grid for smoke runs (~1–2 minutes total).
//! * `medium` *(default)* — enough repetitions for stable numbers.
//! * `full` — the paper-scale grid (§3.3's ~34,586 controlled
//!   experiments); expect several minutes per binary.
//!
//! Results are printed as text tables and also written as JSON under
//! `results/` (override with `IOT_RESULTS_DIR`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod history;

use iot_analysis::destinations::DestinationAnalysis;
use iot_analysis::encryption::EncryptionAnalysis;
use iot_analysis::flows::ExperimentFlows;
use iot_analysis::pii::{scan_experiment, PiiFinding};
use iot_analysis::report::TextTable;
use iot_geodb::registry::GeoDb;
use iot_obs::{Registry, RunReport};
use iot_testbed::lab::LabSite;
use iot_testbed::schedule::{Campaign, CampaignConfig};
use iot_testbed::traffic::identity_of;
use std::collections::HashMap;
use std::io::Write;
use std::path::PathBuf;

/// Selected run scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-run grid.
    Quick,
    /// Default grid.
    Medium,
    /// Paper-scale grid.
    Full,
}

impl Scale {
    /// Lower-case name matching the `IOT_SCALE` value.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Medium => "medium",
            Scale::Full => "full",
        }
    }
}

/// Reads the scale from `IOT_SCALE`.
pub fn scale() -> Scale {
    match std::env::var("IOT_SCALE").as_deref() {
        Ok("quick") => Scale::Quick,
        Ok("full") => Scale::Full,
        _ => Scale::Medium,
    }
}

/// Campaign configuration for a scale.
pub fn campaign_config(scale: Scale) -> CampaignConfig {
    match scale {
        Scale::Quick => CampaignConfig {
            automated_reps: 2,
            manual_reps: 1,
            power_reps: 1,
            idle_hours: 0.5,
            include_vpn: true,
        },
        Scale::Medium => CampaignConfig {
            automated_reps: 8,
            manual_reps: 3,
            power_reps: 3,
            idle_hours: 4.0,
            include_vpn: true,
        },
        Scale::Full => CampaignConfig::default(),
    }
}

/// Cross-validation / forest settings per scale.
pub fn inference_config(scale: Scale) -> iot_analysis::inference::InferenceConfig {
    use iot_ml::forest::RandomForestConfig;
    match scale {
        Scale::Quick => iot_analysis::inference::InferenceConfig {
            cv_repeats: 2,
            forest: RandomForestConfig {
                n_trees: 8,
                ..RandomForestConfig::default()
            },
        },
        Scale::Medium => iot_analysis::inference::InferenceConfig {
            cv_repeats: 5,
            forest: RandomForestConfig {
                n_trees: 20,
                ..RandomForestConfig::default()
            },
        },
        Scale::Full => iot_analysis::inference::InferenceConfig::default(),
    }
}

/// Campaign used when training per-device classifiers (no VPN dimension;
/// that is chosen by the caller).
pub fn training_campaign(scale: Scale) -> Campaign {
    let mut config = campaign_config(scale);
    config.automated_reps = config.automated_reps.max(match scale {
        Scale::Quick => 6,
        Scale::Medium => 12,
        Scale::Full => 30,
    });
    config.manual_reps = config.manual_reps.max(4);
    config.power_reps = config.power_reps.max(4);
    Campaign::new(config)
}

/// The shared controlled-experiment corpus: destination + encryption
/// analyses and PII findings, built in one streaming pass.
pub struct Corpus {
    /// Destination analysis over controlled + idle experiments.
    pub destinations: DestinationAnalysis,
    /// Encryption analysis over the same experiments.
    pub encryption: EncryptionAnalysis,
    /// All PII findings.
    pub pii: Vec<PiiFinding>,
    /// Per-(site, vpn, device) unencrypted-percentage samples, one per
    /// experiment, for the Table 7 significance tests.
    pub unenc_samples: HashMap<(LabSite, bool, &'static str), Vec<f64>>,
    /// Number of experiments ingested.
    pub experiments: u64,
    /// Metrics recorded while building (empty unless `IOT_OBS` >= 1).
    pub obs: Registry,
}

/// Builds the shared corpus: every controlled experiment plus the idle
/// captures of the campaign. When `IOT_OBS` is set, the build is traced
/// into [`Corpus::obs`] and a run report is written to `IOT_OBS_OUT`
/// (default `results/obs_run.json`), so every table binary produces a
/// machine-readable run report for free.
pub fn build_corpus(config: CampaignConfig) -> Corpus {
    let db = GeoDb::new();
    let obs = Registry::new();
    let campaign = {
        let _s = obs.span("campaign_new");
        Campaign::new(config)
    };
    let mut identities = HashMap::new();
    {
        let _s = obs.span("identities");
        for lab in campaign.labs() {
            for d in &lab.devices {
                identities.insert((d.spec().name, d.site), identity_of(d));
            }
        }
    }

    let mut destinations = DestinationAnalysis::new();
    let mut encryption = EncryptionAnalysis::default();
    let mut pii = Vec::new();
    let mut unenc_samples: HashMap<_, Vec<f64>> = HashMap::new();
    let mut experiments = 0u64;
    let obs_ref = &obs;
    let mut ingest = |exp: iot_testbed::experiment::LabeledExperiment| {
        let _ingest = obs_ref.span("ingest");
        obs_ref.add("experiments", 1);
        obs_ref.add("packets", exp.packets.len() as u64);
        obs_ref.observe("experiment_packets", exp.packets.len() as u64);
        let flows = {
            let _s = obs_ref.span("flows");
            ExperimentFlows::from_experiment(&exp)
        };
        obs_ref.add("flows", flows.flows.len() as u64);
        obs_ref.add("bytes", flows.total_bytes());
        {
            let _s = obs_ref.span("destinations");
            destinations.add_flows(&exp, &flows);
        }
        {
            let _s = obs_ref.span("encryption");
            encryption.add_flows(&exp, &flows);
        }
        if let Some(identity) = identities.get(&(exp.device_name, exp.site)) {
            let _s = obs_ref.span("pii");
            let found = scan_experiment(&db, &exp, &flows, identity);
            obs_ref.add("pii_findings", found.len() as u64);
            pii.extend(found);
        }
        let mut unenc = 0u64;
        let mut total = 0u64;
        for lf in &flows.flows {
            let class =
                iot_analysis::encryption::classify_flow(lf, &iot_entropy::Thresholds::default());
            let bytes = lf.flow.total_bytes();
            total += bytes;
            if class == iot_entropy::EncryptionClass::LikelyUnencrypted {
                unenc += bytes;
            }
        }
        if total > 0 {
            unenc_samples
                .entry((exp.site, exp.vpn, exp.device_name))
                .or_default()
                .push(unenc as f64 * 100.0 / total as f64);
        }
        experiments += 1;
    };
    campaign.run(&db, &mut ingest);
    campaign.run_idle(&db, &mut ingest);
    drop(ingest);
    if obs.enabled() {
        let report = RunReport::from_registry("build_corpus", &obs)
            .meta("experiments", &experiments.to_string());
        match report.write() {
            Ok(path) => iot_obs::progress!("obs report written to {}", path.display()),
            Err(e) => eprintln!("obs report write failed: {e}"),
        }
    }
    Corpus {
        destinations,
        encryption,
        pii,
        unenc_samples,
        experiments,
        obs,
    }
}

/// Prints a table and writes its JSON (plus the paper's reference note)
/// under `results/<name>.json`.
pub fn emit(name: &str, table: &TextTable, paper_note: &str) {
    println!("{}", table.render());
    println!("paper: {paper_note}\n");
    let dir = std::env::var("IOT_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    let path = PathBuf::from(dir);
    if std::fs::create_dir_all(&path).is_ok() {
        let mut json = table.to_json();
        json.set("paper_note", iot_core::json::Json::Str(paper_note.to_string()));
        if let Ok(mut f) = std::fs::File::create(path.join(format!("{name}.json"))) {
            let _ = writeln!(f, "{}", json.pretty());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_corpus_builds() {
        let corpus = build_corpus(CampaignConfig {
            automated_reps: 1,
            manual_reps: 1,
            power_reps: 1,
            idle_hours: 0.05,
            include_vpn: false,
        });
        assert!(corpus.experiments > 300, "{}", corpus.experiments);
        assert!(!corpus.pii.is_empty(), "leaky devices must produce findings");
        assert!(!corpus.unenc_samples.is_empty());
    }

    #[test]
    fn scale_configs_ordered() {
        let q = campaign_config(Scale::Quick);
        let m = campaign_config(Scale::Medium);
        let f = campaign_config(Scale::Full);
        assert!(q.automated_reps < m.automated_reps);
        assert!(m.automated_reps < f.automated_reps);
    }
}
