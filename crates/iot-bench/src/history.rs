//! Bench-history trajectory: append-only JSONL of `bench_pipeline` runs.
//!
//! `BENCH_pipeline.json` is a frozen snapshot — one run, no memory. This
//! module gives the benchmark a trajectory: every run appends one line to
//! `BENCH_history.jsonl` (a [`HistoryEntry`]: host fingerprint, scale,
//! workers, serial/parallel median and p95), and [`trend_gate`] compares
//! a fresh run against the recorded history so a PR that regresses the
//! pipeline median by more than 15% fails `verify.sh` instead of slipping
//! through as "numbers look different, machines differ".
//!
//! ## Comparability
//!
//! Absolute times from different machines say nothing about each other,
//! so the gate is **hard only against entries with the same host
//! fingerprint, scale, and worker count**; with no comparable history the
//! verdict passes and merely seeds the trajectory. The fingerprint is
//! `hostname/<hw-threads>t` — coarse on purpose: it distinguishes "same
//! box" from "someone else's laptop" without trying to fingerprint
//! microarchitecture.

use iot_core::json::{Json, ToJson};
use std::io::Write as _;
use std::path::Path;

/// Hard ceiling on fresh-median / baseline before the gate fails.
pub const MAX_REGRESSION_RATIO: f64 = 1.15;

/// Absolute slack: regressions above the ratio still pass when the
/// median delta is below this, so scheduler noise cannot flake the gate.
/// Sized to the reference host's observed *same-code* spread: on the
/// 1-thread shared VM, back-to-back runs of identical code measured
/// serial medians of 248–371 ms (CPU steal arrives in multi-minute
/// windows, so even the median of 3 iterations swings ~50%). The
/// window-**minimum** baseline compares a noisy fresh median against the
/// luckiest recorded run, so the slack must cover that spread or clean
/// verifies flake. The regressions this gate exists to catch are far
/// larger: losing the PR 6 fused-ingest/PII-search win puts the median
/// back at ~780 ms, +530 ms over baseline.
pub const ABS_TOLERANCE_MS: f64 = 140.0;

/// How many most-recent comparable entries form the baseline window.
pub const BASELINE_WINDOW: usize = 8;

/// Hard ceiling on fresh allocations-per-experiment / baseline before
/// the allocation ratchet fails. Much tighter than the timing gate:
/// serial allocation counts are exactly deterministic for a given corpus
/// (the determinism suite byte-compares them), so the only legitimate
/// same-host variance is a code change.
pub const MAX_ALLOC_REGRESSION_RATIO: f64 = 1.10;

/// Absolute slack for the allocation ratchet, in allocations per
/// experiment: a hash-map resize landing on the other side of a
/// threshold after a corpus tweak moves the count by a handful, not by
/// the hundreds a real hot-path regression (e.g. re-introducing
/// per-flow label formatting) costs.
pub const ALLOC_ABS_TOLERANCE: f64 = 64.0;

/// One recorded benchmark run.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryEntry {
    /// Seconds since the Unix epoch at record time.
    pub unix_secs: u64,
    /// `hostname/<hw-threads>t` — see [`host_fingerprint`].
    pub host: String,
    /// Campaign scale (`quick` / `medium` / `full`).
    pub scale: String,
    /// Parallel worker count the run used.
    pub workers: u64,
    /// Serial driver median, milliseconds.
    pub serial_median_ms: f64,
    /// Serial driver p95, milliseconds.
    pub serial_p95_ms: f64,
    /// Parallel driver median, milliseconds.
    pub parallel_median_ms: f64,
    /// Parallel driver p95, milliseconds.
    pub parallel_p95_ms: f64,
    /// Instrumented-over-baseline serial median ratio.
    pub obs_overhead_ratio: f64,
    /// Memory facts fingerprint (`pg<page-size>/ram<bucket>g`) — a
    /// *separate* axis from [`HistoryEntry::host`] so entries recorded
    /// before it existed stay comparable for the timing gate; only the
    /// allocation ratchet keys on it. Empty on pre-allocation entries.
    pub mem: String,
    /// Heap allocations per experiment from the counting-on serial run
    /// (`alloc.allocs_per_experiment` in the bench JSON). Zero on
    /// pre-allocation entries, which exempts them from the ratchet.
    pub allocs_per_exp: f64,
}

/// This machine's coarse identity: `hostname/<hw-threads>t`.
pub fn host_fingerprint() -> String {
    let host = std::fs::read_to_string("/proc/sys/kernel/hostname")
        .ok()
        .map(|h| h.trim().to_string())
        .filter(|h| !h.is_empty())
        .or_else(|| std::env::var("HOSTNAME").ok())
        .unwrap_or_else(|| "unknown".to_string());
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    format!("{host}/{threads}t")
}

/// The kernel's page size, from the ELF auxiliary vector
/// (`/proc/self/auxv`, `AT_PAGESZ` = 6); 4096 when unreadable. Read
/// directly rather than via libc so the crate stays std-only.
pub fn page_size() -> u64 {
    let Ok(auxv) = std::fs::read("/proc/self/auxv") else {
        return 4096;
    };
    for pair in auxv.chunks_exact(16) {
        let key = u64::from_ne_bytes(pair[..8].try_into().unwrap());
        let val = u64::from_ne_bytes(pair[8..].try_into().unwrap());
        if key == 6 && val > 0 {
            return val;
        }
    }
    4096
}

/// Total system RAM bucketed to the enclosing power-of-two GiB range
/// (`"4-8"`, `"8-16"`, `"0-1"` under a gigabyte, `"?"` when
/// `/proc/meminfo` is unreadable). Buckets, not exact kilobytes: the
/// fingerprint should distinguish "same class of box", and survive a few
/// MB of firmware-reserved drift across reboots of the same machine.
pub fn ram_bucket() -> String {
    let Some(kb) = std::fs::read_to_string("/proc/meminfo")
        .ok()
        .and_then(|text| {
            text.lines().find_map(|l| {
                l.strip_prefix("MemTotal:")?
                    .trim()
                    .trim_end_matches("kB")
                    .trim()
                    .parse::<u64>()
                    .ok()
            })
        })
    else {
        return "?".to_string();
    };
    let gib = kb / (1 << 20);
    if gib == 0 {
        return "0-1".to_string();
    }
    let lower = 1u64 << (63 - gib.leading_zeros());
    format!("{lower}-{}", lower * 2)
}

/// This machine's memory-facts identity: `pg<page-size>/ram<bucket>g`,
/// e.g. `pg4096/ram4-8g`. Keyed separately from [`host_fingerprint`]
/// because allocation counts care about allocator-visible geometry
/// (page size, memory class), not thread count.
pub fn mem_fingerprint() -> String {
    format!("pg{}/ram{}g", page_size(), ram_bucket())
}

impl HistoryEntry {
    /// Builds an entry from a `bench_pipeline` output JSON, stamped with
    /// the current time and this machine's fingerprint.
    pub fn from_bench_json(bench: &Json) -> Result<HistoryEntry, String> {
        let num = |section: &str, field: &str| -> Result<f64, String> {
            bench
                .get(section)
                .and_then(|s| s.get(field))
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("bench json: missing {section}.{field}"))
        };
        Ok(HistoryEntry {
            unix_secs: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            host: host_fingerprint(),
            scale: bench
                .get("scale")
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string(),
            workers: bench.get("workers").and_then(Json::as_u64).unwrap_or(0),
            serial_median_ms: num("serial", "median_ms")?,
            serial_p95_ms: num("serial", "p95_ms")?,
            parallel_median_ms: num("parallel", "median_ms")?,
            parallel_p95_ms: num("parallel", "p95_ms")?,
            obs_overhead_ratio: bench
                .get("obs_overhead_ratio")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            mem: mem_fingerprint(),
            allocs_per_exp: bench
                .get("alloc")
                .and_then(|a| a.get("allocs_per_experiment"))
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
        })
    }

    /// Parses one JSONL line back into an entry (`None` on malformed
    /// lines, so a corrupted history degrades instead of failing).
    pub fn parse(line: &str) -> Option<HistoryEntry> {
        let j = Json::parse(line.trim()).ok()?;
        Some(HistoryEntry {
            unix_secs: j.get("unix_secs")?.as_u64()?,
            host: j.get("host")?.as_str()?.to_string(),
            scale: j.get("scale")?.as_str()?.to_string(),
            workers: j.get("workers")?.as_u64()?,
            serial_median_ms: j.get("serial_median_ms")?.as_f64()?,
            serial_p95_ms: j.get("serial_p95_ms")?.as_f64()?,
            parallel_median_ms: j.get("parallel_median_ms")?.as_f64()?,
            parallel_p95_ms: j.get("parallel_p95_ms")?.as_f64()?,
            obs_overhead_ratio: j.get("obs_overhead_ratio")?.as_f64()?,
            // Added after the first recorded entries: default rather
            // than reject, or the committed history resets to zero the
            // day a field lands.
            mem: j
                .get("mem")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            allocs_per_exp: j
                .get("allocs_per_exp")
                .and_then(Json::as_f64)
                .unwrap_or_default(),
        })
    }

    /// Whether `other` is a valid regression baseline for this run.
    pub fn comparable_to(&self, other: &HistoryEntry) -> bool {
        self.host == other.host && self.scale == other.scale && self.workers == other.workers
    }

    /// Whether `other` can baseline this run's *allocation* ratchet:
    /// timing-comparable, same memory fingerprint, and both sides
    /// actually measured (pre-allocation entries carry zero).
    pub fn alloc_comparable_to(&self, other: &HistoryEntry) -> bool {
        self.comparable_to(other)
            && !self.mem.is_empty()
            && self.mem == other.mem
            && self.allocs_per_exp > 0.0
            && other.allocs_per_exp > 0.0
    }
}

impl ToJson for HistoryEntry {
    fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.set("unix_secs", self.unix_secs.to_json());
        j.set("host", self.host.to_json());
        j.set("scale", self.scale.to_json());
        j.set("workers", self.workers.to_json());
        j.set("serial_median_ms", self.serial_median_ms.to_json());
        j.set("serial_p95_ms", self.serial_p95_ms.to_json());
        j.set("parallel_median_ms", self.parallel_median_ms.to_json());
        j.set("parallel_p95_ms", self.parallel_p95_ms.to_json());
        j.set("obs_overhead_ratio", self.obs_overhead_ratio.to_json());
        j.set("mem", self.mem.to_json());
        j.set("allocs_per_exp", self.allocs_per_exp.to_json());
        j
    }
}

/// Loads every parseable entry from a JSONL history file, oldest first.
/// A missing file is an empty history, not an error.
pub fn load(path: &Path) -> Vec<HistoryEntry> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(HistoryEntry::parse)
        .collect()
}

/// Appends one entry as a JSONL line, creating the file (and parents)
/// as needed.
pub fn append(path: &Path, entry: &HistoryEntry) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(f, "{}", entry.to_json().dump())
}

/// Outcome of comparing a fresh run against the recorded trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendVerdict {
    /// Comparable baseline entries found (same host/scale/workers).
    pub baseline_runs: usize,
    /// The *fastest* serial median in the baseline window (0 when
    /// empty) — the ratchet: once a speedup is recorded, the bar stays
    /// there until it ages out of the window.
    pub baseline_ms: f64,
    /// The fresh run's serial median.
    pub current_median_ms: f64,
    /// `current / baseline` (1.0 when no baseline exists).
    pub ratio: f64,
    /// Whether the gate passes.
    pub pass: bool,
}

impl TrendVerdict {
    /// One-line human summary.
    pub fn summary(&self) -> String {
        if self.baseline_runs == 0 {
            return format!(
                "no comparable history; seeding trajectory at {:.1} ms",
                self.current_median_ms
            );
        }
        format!(
            "serial median {:.1} ms vs ratchet baseline {:.1} ms (window \
             best of {} run(s), {:.2}x, limit {MAX_REGRESSION_RATIO}x) — {}",
            self.current_median_ms,
            self.baseline_ms,
            self.baseline_runs,
            self.ratio,
            if self.pass { "ok" } else { "REGRESSION" }
        )
    }
}

/// Gates `fresh` against `history`: fails when the fresh serial median
/// exceeds the baseline by more than [`MAX_REGRESSION_RATIO`] *and*
/// more than [`ABS_TOLERANCE_MS`]. The baseline is the **minimum**
/// serial median over the most recent [`BASELINE_WINDOW`] comparable
/// entries — a ratchet: the moment an optimization PR lands one fast
/// run, every later PR is held to that bar (a window *median* would let
/// a sequence of small regressions walk the baseline back up).
/// Incomparable or empty history always passes — it seeds the
/// trajectory rather than guessing across machines.
pub fn trend_gate(history: &[HistoryEntry], fresh: &HistoryEntry) -> TrendVerdict {
    let mut window: Vec<f64> = history
        .iter()
        .filter(|e| fresh.comparable_to(e))
        .map(|e| e.serial_median_ms)
        .collect();
    if window.len() > BASELINE_WINDOW {
        window.drain(..window.len() - BASELINE_WINDOW);
    }
    let baseline_runs = window.len();
    if baseline_runs == 0 {
        return TrendVerdict {
            baseline_runs: 0,
            baseline_ms: 0.0,
            current_median_ms: fresh.serial_median_ms,
            ratio: 1.0,
            pass: true,
        };
    }
    let baseline = window
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    let ratio = if baseline > 0.0 {
        fresh.serial_median_ms / baseline
    } else {
        1.0
    };
    let delta = fresh.serial_median_ms - baseline;
    TrendVerdict {
        baseline_runs,
        baseline_ms: baseline,
        current_median_ms: fresh.serial_median_ms,
        ratio,
        pass: ratio <= MAX_REGRESSION_RATIO || delta <= ABS_TOLERANCE_MS,
    }
}

/// Outcome of the allocation ratchet.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocVerdict {
    /// Alloc-comparable baseline entries found (same host/scale/workers
    /// *and* memory fingerprint, measurement present on both sides).
    pub baseline_runs: usize,
    /// Fewest allocations-per-experiment in the baseline window.
    pub baseline_allocs_per_exp: f64,
    /// The fresh run's allocations per experiment.
    pub current_allocs_per_exp: f64,
    /// `current / baseline` (1.0 when no baseline exists).
    pub ratio: f64,
    /// Whether the gate passes.
    pub pass: bool,
}

impl AllocVerdict {
    /// One-line human summary.
    pub fn summary(&self) -> String {
        if self.baseline_runs == 0 {
            return format!(
                "no alloc-comparable history; seeding trajectory at {:.1} allocs/experiment",
                self.current_allocs_per_exp
            );
        }
        format!(
            "{:.1} allocs/experiment vs ratchet baseline {:.1} (window best \
             of {} run(s), {:.2}x, limit {MAX_ALLOC_REGRESSION_RATIO}x) — {}",
            self.current_allocs_per_exp,
            self.baseline_allocs_per_exp,
            self.baseline_runs,
            self.ratio,
            if self.pass { "ok" } else { "ALLOC REGRESSION" }
        )
    }
}

/// The allocation analogue of [`trend_gate`]: fails when the fresh run's
/// allocations-per-experiment exceed the window-minimum baseline by more
/// than [`MAX_ALLOC_REGRESSION_RATIO`] *and* more than
/// [`ALLOC_ABS_TOLERANCE`]. Same ratchet semantics — one lean run holds
/// the bar — but keyed additionally on the memory fingerprint, and
/// exempting entries recorded before allocation accounting existed.
pub fn alloc_trend_gate(history: &[HistoryEntry], fresh: &HistoryEntry) -> AllocVerdict {
    let mut window: Vec<f64> = history
        .iter()
        .filter(|e| fresh.alloc_comparable_to(e))
        .map(|e| e.allocs_per_exp)
        .collect();
    if window.len() > BASELINE_WINDOW {
        window.drain(..window.len() - BASELINE_WINDOW);
    }
    let baseline_runs = window.len();
    if baseline_runs == 0 {
        return AllocVerdict {
            baseline_runs: 0,
            baseline_allocs_per_exp: 0.0,
            current_allocs_per_exp: fresh.allocs_per_exp,
            ratio: 1.0,
            pass: true,
        };
    }
    let baseline = window.iter().copied().fold(f64::INFINITY, f64::min);
    let ratio = if baseline > 0.0 {
        fresh.allocs_per_exp / baseline
    } else {
        1.0
    };
    let delta = fresh.allocs_per_exp - baseline;
    AllocVerdict {
        baseline_runs,
        baseline_allocs_per_exp: baseline,
        current_allocs_per_exp: fresh.allocs_per_exp,
        ratio,
        pass: ratio <= MAX_ALLOC_REGRESSION_RATIO || delta <= ALLOC_ABS_TOLERANCE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(host: &str, serial_ms: f64) -> HistoryEntry {
        HistoryEntry {
            unix_secs: 1,
            host: host.to_string(),
            scale: "quick".to_string(),
            workers: 2,
            serial_median_ms: serial_ms,
            serial_p95_ms: serial_ms * 1.1,
            parallel_median_ms: serial_ms / 2.0,
            parallel_p95_ms: serial_ms / 1.8,
            obs_overhead_ratio: 1.01,
            mem: "pg4096/ram4-8g".to_string(),
            allocs_per_exp: 400.0,
        }
    }

    fn alloc_entry(host: &str, allocs_per_exp: f64) -> HistoryEntry {
        HistoryEntry {
            allocs_per_exp,
            ..entry(host, 250.0)
        }
    }

    #[test]
    fn entry_roundtrips_through_jsonl() {
        let e = entry("box/4t", 123.5);
        let line = e.to_json().dump();
        assert_eq!(HistoryEntry::parse(&line), Some(e));
        assert_eq!(HistoryEntry::parse("not json"), None);
        assert_eq!(HistoryEntry::parse("{\"host\":\"x\"}"), None);
    }

    #[test]
    fn append_and_load_roundtrip_and_skip_garbage() {
        let dir = std::env::temp_dir().join("iot_bench_history_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("hist.jsonl");
        let a = entry("box/4t", 100.0);
        let b = entry("box/4t", 110.0);
        append(&path, &a).unwrap();
        // A torn/corrupt line must not poison the rest of the file.
        {
            let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
            writeln!(f, "{{\"torn\":").unwrap();
        }
        append(&path, &b).unwrap();
        assert_eq!(load(&path), vec![a, b]);
        assert!(load(&dir.join("missing.jsonl")).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gate_passes_with_no_comparable_history() {
        let fresh = entry("box/4t", 500.0);
        let v = trend_gate(&[], &fresh);
        assert!(v.pass);
        assert_eq!(v.baseline_runs, 0);
        // Another machine's entries are not a baseline.
        let other = entry("elsewhere/64t", 10.0);
        let v = trend_gate(&[other], &fresh);
        assert!(v.pass);
        assert_eq!(v.baseline_runs, 0);
    }

    #[test]
    fn gate_fails_on_large_regression_only() {
        let history = vec![entry("box/4t", 1000.0), entry("box/4t", 1020.0)];
        let ok = trend_gate(&history, &entry("box/4t", 1100.0));
        assert!(ok.pass, "{:?}", ok);
        let bad = trend_gate(&history, &entry("box/4t", 1400.0));
        assert!(!bad.pass, "{:?}", bad);
        assert!(bad.ratio > MAX_REGRESSION_RATIO);
        assert!(bad.summary().contains("REGRESSION"));
    }

    #[test]
    fn tiny_absolute_deltas_never_fail() {
        // 2 ms -> 3 ms is a 1.5x ratio but far under the absolute slack.
        let history = vec![entry("box/4t", 2.0)];
        let v = trend_gate(&history, &entry("box/4t", 3.0));
        assert!(v.pass, "{v:?}");
    }

    #[test]
    fn baseline_is_recent_window_minimum() {
        let mut history: Vec<HistoryEntry> =
            (0..20).map(|i| entry("box/4t", 2000.0 - i as f64 * 50.0)).collect();
        // The old slow entries (2000, 1950, …) fall outside the window;
        // the recent ones (1400 down to 1050) set the bar at their
        // *fastest* run, so a 1500 ms run is a regression against the
        // recent trend even though it beats the oldest entries.
        let fresh = entry("box/4t", 1500.0);
        let v = trend_gate(&history, &fresh);
        assert_eq!(v.baseline_runs, BASELINE_WINDOW);
        assert_eq!(v.baseline_ms, 1050.0, "{v:?}");
        assert!(!v.pass, "{v:?}");
        history.truncate(2); // only 2000/1950 remain -> fresh is faster
        assert!(trend_gate(&history, &fresh).pass);
    }

    #[test]
    fn ratchet_holds_after_one_fast_run() {
        // A speedup PR lands one 300 ms run among older 800 ms entries;
        // the bar immediately ratchets to 300 ms and a return to 800 ms
        // fails even though the window *median* is still ~800.
        let history = vec![
            entry("box/4t", 810.0),
            entry("box/4t", 790.0),
            entry("box/4t", 805.0),
            entry("box/4t", 300.0),
        ];
        let v = trend_gate(&history, &entry("box/4t", 800.0));
        assert_eq!(v.baseline_ms, 300.0);
        assert!(!v.pass, "{v:?}");
        assert!(trend_gate(&history, &entry("box/4t", 330.0)).pass);
    }

    #[test]
    fn fingerprint_shape() {
        let fp = host_fingerprint();
        assert!(fp.contains('/'), "{fp}");
        assert!(fp.ends_with('t'), "{fp}");
    }

    #[test]
    fn mem_fingerprint_shape() {
        let fp = mem_fingerprint();
        assert!(fp.starts_with("pg"), "{fp}");
        assert!(fp.contains("/ram"), "{fp}");
        assert!(fp.ends_with('g') || fp.ends_with('?'), "{fp}");
        assert!(page_size() >= 4096, "{}", page_size());
        assert!(page_size().is_power_of_two());
    }

    #[test]
    fn pre_allocation_lines_parse_with_defaults() {
        // A committed line from before the mem/alloc fields existed must
        // keep parsing (defaulted), or landing the fields would silently
        // reset every recorded trajectory.
        let old_line = "{\"unix_secs\":1,\"host\":\"box/4t\",\"scale\":\"quick\",\
                        \"workers\":2,\"serial_median_ms\":100.0,\
                        \"serial_p95_ms\":110.0,\"parallel_median_ms\":50.0,\
                        \"parallel_p95_ms\":55.0,\"obs_overhead_ratio\":1.01}";
        let parsed = HistoryEntry::parse(old_line).expect("old line must parse");
        assert_eq!(parsed.serial_median_ms, 100.0);
        assert_eq!(parsed.mem, "");
        assert_eq!(parsed.allocs_per_exp, 0.0);
        // And such entries never baseline the allocation ratchet…
        let fresh = entry("box/4t", 100.0);
        assert!(!fresh.alloc_comparable_to(&parsed));
        // …but still baseline the timing gate.
        assert!(fresh.comparable_to(&parsed));
    }

    #[test]
    fn alloc_gate_requires_matching_mem_and_measurement() {
        let fresh = alloc_entry("box/4t", 450.0);
        // Different memory fingerprint: not a baseline.
        let mut other_mem = alloc_entry("box/4t", 100.0);
        other_mem.mem = "pg16384/ram4-8g".to_string();
        // Unmeasured (pre-allocation) entry: not a baseline.
        let unmeasured = alloc_entry("box/4t", 0.0);
        let v = alloc_trend_gate(&[other_mem, unmeasured], &fresh);
        assert!(v.pass, "{v:?}");
        assert_eq!(v.baseline_runs, 0);
    }

    #[test]
    fn alloc_ratchet_holds_after_one_lean_run() {
        let history = vec![
            alloc_entry("box/4t", 900.0),
            alloc_entry("box/4t", 880.0),
            alloc_entry("box/4t", 400.0), // the lean run sets the bar
        ];
        let bad = alloc_trend_gate(&history, &alloc_entry("box/4t", 900.0));
        assert_eq!(bad.baseline_allocs_per_exp, 400.0);
        assert!(!bad.pass, "{bad:?}");
        assert!(bad.summary().contains("ALLOC REGRESSION"));
        let ok = alloc_trend_gate(&history, &alloc_entry("box/4t", 430.0));
        assert!(ok.pass, "{ok:?}");
        // Small absolute creep under the slack passes even over-ratio.
        let tiny = alloc_trend_gate(&[alloc_entry("box/4t", 50.0)], &alloc_entry("box/4t", 90.0));
        assert!(tiny.pass, "{tiny:?}");
    }
}
