//! Bench-history trajectory: append-only JSONL of `bench_pipeline` runs.
//!
//! `BENCH_pipeline.json` is a frozen snapshot — one run, no memory. This
//! module gives the benchmark a trajectory: every run appends one line to
//! `BENCH_history.jsonl` (a [`HistoryEntry`]: host fingerprint, scale,
//! workers, serial/parallel median and p95), and [`trend_gate`] compares
//! a fresh run against the recorded history so a PR that regresses the
//! pipeline median by more than 15% fails `verify.sh` instead of slipping
//! through as "numbers look different, machines differ".
//!
//! ## Comparability
//!
//! Absolute times from different machines say nothing about each other,
//! so the gate is **hard only against entries with the same host
//! fingerprint, scale, and worker count**; with no comparable history the
//! verdict passes and merely seeds the trajectory. The fingerprint is
//! `hostname/<hw-threads>t` — coarse on purpose: it distinguishes "same
//! box" from "someone else's laptop" without trying to fingerprint
//! microarchitecture.

use iot_core::json::{Json, ToJson};
use std::io::Write as _;
use std::path::Path;

/// Hard ceiling on fresh-median / baseline before the gate fails.
pub const MAX_REGRESSION_RATIO: f64 = 1.15;

/// Absolute slack: regressions above the ratio still pass when the
/// median delta is below this, so scheduler noise cannot flake the gate.
/// Sized to the reference host's observed *same-code* spread: on the
/// 1-thread shared VM, back-to-back runs of identical code measured
/// serial medians of 248–371 ms (CPU steal arrives in multi-minute
/// windows, so even the median of 3 iterations swings ~50%). The
/// window-**minimum** baseline compares a noisy fresh median against the
/// luckiest recorded run, so the slack must cover that spread or clean
/// verifies flake. The regressions this gate exists to catch are far
/// larger: losing the PR 6 fused-ingest/PII-search win puts the median
/// back at ~780 ms, +530 ms over baseline.
pub const ABS_TOLERANCE_MS: f64 = 140.0;

/// How many most-recent comparable entries form the baseline window.
pub const BASELINE_WINDOW: usize = 8;

/// One recorded benchmark run.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryEntry {
    /// Seconds since the Unix epoch at record time.
    pub unix_secs: u64,
    /// `hostname/<hw-threads>t` — see [`host_fingerprint`].
    pub host: String,
    /// Campaign scale (`quick` / `medium` / `full`).
    pub scale: String,
    /// Parallel worker count the run used.
    pub workers: u64,
    /// Serial driver median, milliseconds.
    pub serial_median_ms: f64,
    /// Serial driver p95, milliseconds.
    pub serial_p95_ms: f64,
    /// Parallel driver median, milliseconds.
    pub parallel_median_ms: f64,
    /// Parallel driver p95, milliseconds.
    pub parallel_p95_ms: f64,
    /// Instrumented-over-baseline serial median ratio.
    pub obs_overhead_ratio: f64,
}

/// This machine's coarse identity: `hostname/<hw-threads>t`.
pub fn host_fingerprint() -> String {
    let host = std::fs::read_to_string("/proc/sys/kernel/hostname")
        .ok()
        .map(|h| h.trim().to_string())
        .filter(|h| !h.is_empty())
        .or_else(|| std::env::var("HOSTNAME").ok())
        .unwrap_or_else(|| "unknown".to_string());
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    format!("{host}/{threads}t")
}

impl HistoryEntry {
    /// Builds an entry from a `bench_pipeline` output JSON, stamped with
    /// the current time and this machine's fingerprint.
    pub fn from_bench_json(bench: &Json) -> Result<HistoryEntry, String> {
        let num = |section: &str, field: &str| -> Result<f64, String> {
            bench
                .get(section)
                .and_then(|s| s.get(field))
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("bench json: missing {section}.{field}"))
        };
        Ok(HistoryEntry {
            unix_secs: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            host: host_fingerprint(),
            scale: bench
                .get("scale")
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string(),
            workers: bench.get("workers").and_then(Json::as_u64).unwrap_or(0),
            serial_median_ms: num("serial", "median_ms")?,
            serial_p95_ms: num("serial", "p95_ms")?,
            parallel_median_ms: num("parallel", "median_ms")?,
            parallel_p95_ms: num("parallel", "p95_ms")?,
            obs_overhead_ratio: bench
                .get("obs_overhead_ratio")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
        })
    }

    /// Parses one JSONL line back into an entry (`None` on malformed
    /// lines, so a corrupted history degrades instead of failing).
    pub fn parse(line: &str) -> Option<HistoryEntry> {
        let j = Json::parse(line.trim()).ok()?;
        Some(HistoryEntry {
            unix_secs: j.get("unix_secs")?.as_u64()?,
            host: j.get("host")?.as_str()?.to_string(),
            scale: j.get("scale")?.as_str()?.to_string(),
            workers: j.get("workers")?.as_u64()?,
            serial_median_ms: j.get("serial_median_ms")?.as_f64()?,
            serial_p95_ms: j.get("serial_p95_ms")?.as_f64()?,
            parallel_median_ms: j.get("parallel_median_ms")?.as_f64()?,
            parallel_p95_ms: j.get("parallel_p95_ms")?.as_f64()?,
            obs_overhead_ratio: j.get("obs_overhead_ratio")?.as_f64()?,
        })
    }

    /// Whether `other` is a valid regression baseline for this run.
    pub fn comparable_to(&self, other: &HistoryEntry) -> bool {
        self.host == other.host && self.scale == other.scale && self.workers == other.workers
    }
}

impl ToJson for HistoryEntry {
    fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.set("unix_secs", self.unix_secs.to_json());
        j.set("host", self.host.to_json());
        j.set("scale", self.scale.to_json());
        j.set("workers", self.workers.to_json());
        j.set("serial_median_ms", self.serial_median_ms.to_json());
        j.set("serial_p95_ms", self.serial_p95_ms.to_json());
        j.set("parallel_median_ms", self.parallel_median_ms.to_json());
        j.set("parallel_p95_ms", self.parallel_p95_ms.to_json());
        j.set("obs_overhead_ratio", self.obs_overhead_ratio.to_json());
        j
    }
}

/// Loads every parseable entry from a JSONL history file, oldest first.
/// A missing file is an empty history, not an error.
pub fn load(path: &Path) -> Vec<HistoryEntry> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(HistoryEntry::parse)
        .collect()
}

/// Appends one entry as a JSONL line, creating the file (and parents)
/// as needed.
pub fn append(path: &Path, entry: &HistoryEntry) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(f, "{}", entry.to_json().dump())
}

/// Outcome of comparing a fresh run against the recorded trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendVerdict {
    /// Comparable baseline entries found (same host/scale/workers).
    pub baseline_runs: usize,
    /// The *fastest* serial median in the baseline window (0 when
    /// empty) — the ratchet: once a speedup is recorded, the bar stays
    /// there until it ages out of the window.
    pub baseline_ms: f64,
    /// The fresh run's serial median.
    pub current_median_ms: f64,
    /// `current / baseline` (1.0 when no baseline exists).
    pub ratio: f64,
    /// Whether the gate passes.
    pub pass: bool,
}

impl TrendVerdict {
    /// One-line human summary.
    pub fn summary(&self) -> String {
        if self.baseline_runs == 0 {
            return format!(
                "no comparable history; seeding trajectory at {:.1} ms",
                self.current_median_ms
            );
        }
        format!(
            "serial median {:.1} ms vs ratchet baseline {:.1} ms (window \
             best of {} run(s), {:.2}x, limit {MAX_REGRESSION_RATIO}x) — {}",
            self.current_median_ms,
            self.baseline_ms,
            self.baseline_runs,
            self.ratio,
            if self.pass { "ok" } else { "REGRESSION" }
        )
    }
}

/// Gates `fresh` against `history`: fails when the fresh serial median
/// exceeds the baseline by more than [`MAX_REGRESSION_RATIO`] *and*
/// more than [`ABS_TOLERANCE_MS`]. The baseline is the **minimum**
/// serial median over the most recent [`BASELINE_WINDOW`] comparable
/// entries — a ratchet: the moment an optimization PR lands one fast
/// run, every later PR is held to that bar (a window *median* would let
/// a sequence of small regressions walk the baseline back up).
/// Incomparable or empty history always passes — it seeds the
/// trajectory rather than guessing across machines.
pub fn trend_gate(history: &[HistoryEntry], fresh: &HistoryEntry) -> TrendVerdict {
    let mut window: Vec<f64> = history
        .iter()
        .filter(|e| fresh.comparable_to(e))
        .map(|e| e.serial_median_ms)
        .collect();
    if window.len() > BASELINE_WINDOW {
        window.drain(..window.len() - BASELINE_WINDOW);
    }
    let baseline_runs = window.len();
    if baseline_runs == 0 {
        return TrendVerdict {
            baseline_runs: 0,
            baseline_ms: 0.0,
            current_median_ms: fresh.serial_median_ms,
            ratio: 1.0,
            pass: true,
        };
    }
    let baseline = window
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    let ratio = if baseline > 0.0 {
        fresh.serial_median_ms / baseline
    } else {
        1.0
    };
    let delta = fresh.serial_median_ms - baseline;
    TrendVerdict {
        baseline_runs,
        baseline_ms: baseline,
        current_median_ms: fresh.serial_median_ms,
        ratio,
        pass: ratio <= MAX_REGRESSION_RATIO || delta <= ABS_TOLERANCE_MS,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(host: &str, serial_ms: f64) -> HistoryEntry {
        HistoryEntry {
            unix_secs: 1,
            host: host.to_string(),
            scale: "quick".to_string(),
            workers: 2,
            serial_median_ms: serial_ms,
            serial_p95_ms: serial_ms * 1.1,
            parallel_median_ms: serial_ms / 2.0,
            parallel_p95_ms: serial_ms / 1.8,
            obs_overhead_ratio: 1.01,
        }
    }

    #[test]
    fn entry_roundtrips_through_jsonl() {
        let e = entry("box/4t", 123.5);
        let line = e.to_json().dump();
        assert_eq!(HistoryEntry::parse(&line), Some(e));
        assert_eq!(HistoryEntry::parse("not json"), None);
        assert_eq!(HistoryEntry::parse("{\"host\":\"x\"}"), None);
    }

    #[test]
    fn append_and_load_roundtrip_and_skip_garbage() {
        let dir = std::env::temp_dir().join("iot_bench_history_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("hist.jsonl");
        let a = entry("box/4t", 100.0);
        let b = entry("box/4t", 110.0);
        append(&path, &a).unwrap();
        // A torn/corrupt line must not poison the rest of the file.
        {
            let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
            writeln!(f, "{{\"torn\":").unwrap();
        }
        append(&path, &b).unwrap();
        assert_eq!(load(&path), vec![a, b]);
        assert!(load(&dir.join("missing.jsonl")).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gate_passes_with_no_comparable_history() {
        let fresh = entry("box/4t", 500.0);
        let v = trend_gate(&[], &fresh);
        assert!(v.pass);
        assert_eq!(v.baseline_runs, 0);
        // Another machine's entries are not a baseline.
        let other = entry("elsewhere/64t", 10.0);
        let v = trend_gate(&[other], &fresh);
        assert!(v.pass);
        assert_eq!(v.baseline_runs, 0);
    }

    #[test]
    fn gate_fails_on_large_regression_only() {
        let history = vec![entry("box/4t", 1000.0), entry("box/4t", 1020.0)];
        let ok = trend_gate(&history, &entry("box/4t", 1100.0));
        assert!(ok.pass, "{:?}", ok);
        let bad = trend_gate(&history, &entry("box/4t", 1400.0));
        assert!(!bad.pass, "{:?}", bad);
        assert!(bad.ratio > MAX_REGRESSION_RATIO);
        assert!(bad.summary().contains("REGRESSION"));
    }

    #[test]
    fn tiny_absolute_deltas_never_fail() {
        // 2 ms -> 3 ms is a 1.5x ratio but far under the absolute slack.
        let history = vec![entry("box/4t", 2.0)];
        let v = trend_gate(&history, &entry("box/4t", 3.0));
        assert!(v.pass, "{v:?}");
    }

    #[test]
    fn baseline_is_recent_window_minimum() {
        let mut history: Vec<HistoryEntry> =
            (0..20).map(|i| entry("box/4t", 2000.0 - i as f64 * 50.0)).collect();
        // The old slow entries (2000, 1950, …) fall outside the window;
        // the recent ones (1400 down to 1050) set the bar at their
        // *fastest* run, so a 1500 ms run is a regression against the
        // recent trend even though it beats the oldest entries.
        let fresh = entry("box/4t", 1500.0);
        let v = trend_gate(&history, &fresh);
        assert_eq!(v.baseline_runs, BASELINE_WINDOW);
        assert_eq!(v.baseline_ms, 1050.0, "{v:?}");
        assert!(!v.pass, "{v:?}");
        history.truncate(2); // only 2000/1950 remain -> fresh is faster
        assert!(trend_gate(&history, &fresh).pass);
    }

    #[test]
    fn ratchet_holds_after_one_fast_run() {
        // A speedup PR lands one 300 ms run among older 800 ms entries;
        // the bar immediately ratchets to 300 ms and a return to 800 ms
        // fails even though the window *median* is still ~800.
        let history = vec![
            entry("box/4t", 810.0),
            entry("box/4t", 790.0),
            entry("box/4t", 805.0),
            entry("box/4t", 300.0),
        ];
        let v = trend_gate(&history, &entry("box/4t", 800.0));
        assert_eq!(v.baseline_ms, 300.0);
        assert!(!v.pass, "{v:?}");
        assert!(trend_gate(&history, &entry("box/4t", 330.0)).pass);
    }

    #[test]
    fn fingerprint_shape() {
        let fp = host_fingerprint();
        assert!(fp.contains('/'), "{fp}");
        assert!(fp.ends_with('t'), "{fp}");
    }
}
