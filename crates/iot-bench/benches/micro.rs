//! Criterion micro-benchmarks of the substrate hot paths.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use iot_entropy::generators;
use iot_entropy::normalized_entropy;
use iot_net::mac::MacAddr;
use iot_net::packet::{PacketBuilder, ParsedPacket};
use iot_net::pcap;
use iot_net::tcp::TcpFlags;
use iot_protocols::analyzer::{identify_flow, Transport};
use iot_protocols::{dns, tls};
use std::net::Ipv4Addr;

fn sample_packets(n: usize) -> Vec<iot_net::packet::Packet> {
    let mut b = PacketBuilder::new(
        MacAddr::new(1, 2, 3, 4, 5, 6),
        MacAddr::new(6, 5, 4, 3, 2, 1),
        Ipv4Addr::new(192, 168, 10, 3),
        Ipv4Addr::new(52, 1, 2, 3),
    );
    let mut rng = generators::rng(7);
    (0..n)
        .map(|i| {
            let payload = generators::ciphertext(&mut rng, 400);
            b.tcp(
                i as u64 * 1000,
                40000,
                443,
                i as u32,
                0,
                TcpFlags::PSH | TcpFlags::ACK,
                &payload,
            )
        })
        .collect()
}

fn bench_packet_parse(c: &mut Criterion) {
    let packets = sample_packets(1);
    let bytes = packets[0].data.clone();
    let mut g = c.benchmark_group("packet");
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("parse_full_frame", |b| {
        b.iter(|| ParsedPacket::parse(black_box(&bytes)).unwrap())
    });
    g.finish();
}

fn bench_pcap(c: &mut Criterion) {
    let packets = sample_packets(200);
    let bytes = pcap::to_bytes(&packets).unwrap();
    let mut g = c.benchmark_group("pcap");
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("write_200_packets", |b| {
        b.iter(|| pcap::to_bytes(black_box(&packets)).unwrap())
    });
    g.bench_function("read_200_packets", |b| {
        b.iter(|| pcap::from_bytes(black_box(&bytes)).unwrap())
    });
    g.finish();
}

fn bench_entropy(c: &mut Criterion) {
    let mut rng = generators::rng(1);
    let data = generators::ciphertext(&mut rng, 8192);
    let mut g = c.benchmark_group("entropy");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("normalized_entropy_8k", |b| {
        b.iter(|| normalized_entropy(black_box(&data)))
    });
    g.finish();
}

fn bench_dns(c: &mut Criterion) {
    let query = dns::Message::query(7, "device-metrics-us.amazon.com");
    let answer = dns::Message::answer(&query, &[Ipv4Addr::new(52, 1, 1, 1)], 300);
    let bytes = answer.encode();
    c.bench_function("dns/encode_answer", |b| b.iter(|| black_box(&answer).encode()));
    c.bench_function("dns/parse_answer", |b| {
        b.iter(|| dns::Message::parse(black_box(&bytes)).unwrap())
    });
}

fn bench_tls(c: &mut Criterion) {
    let hello = tls::ClientHello::new([9u8; 32], "avs-alexa-na.amazon.com");
    let stream = hello.to_record().encode();
    c.bench_function("tls/sni_from_stream", |b| {
        b.iter(|| tls::sni_from_stream(black_box(&stream)).unwrap())
    });
}

fn bench_identify(c: &mut Criterion) {
    let hello = tls::ClientHello::new([9u8; 32], "example.com").to_record().encode();
    let mut rng = generators::rng(3);
    let proprietary = generators::media_like(&mut rng, 2048);
    c.bench_function("identify/tls_flow", |b| {
        b.iter(|| identify_flow(Transport::Tcp, 443, black_box(&hello), &[]))
    });
    c.bench_function("identify/unknown_flow", |b| {
        b.iter(|| identify_flow(Transport::Tcp, 8300, black_box(&proprietary), &[]))
    });
}

fn bench_features(c: &mut Criterion) {
    let packets = sample_packets(500);
    c.bench_function("features/extract_500_packets", |b| {
        b.iter(|| iot_analysis::features::extract_features(black_box(&packets)))
    });
}

fn bench_forest(c: &mut Criterion) {
    use iot_ml::dataset::Dataset;
    use iot_ml::forest::{RandomForest, RandomForestConfig};
    use rand::Rng;
    let mut rng = generators::rng(5);
    let mut d = Dataset::new((0..4).map(|i| format!("c{i}")).collect());
    for c_id in 0..4 {
        for _ in 0..60 {
            let base = c_id as f64 * 5.0;
            let row: Vec<f64> = (0..28).map(|_| base + rng.gen_range(-1.0..1.0)).collect();
            d.push(row, c_id);
        }
    }
    let forest = RandomForest::fit(&d, &RandomForestConfig::default());
    let probe = d.features[0].clone();
    c.bench_function("forest/fit_240x28", |b| {
        b.iter(|| RandomForest::fit(black_box(&d), &RandomForestConfig::default()))
    });
    c.bench_function("forest/predict", |b| {
        b.iter(|| forest.predict(black_box(&probe)))
    });
}

criterion_group!(
    benches,
    bench_packet_parse,
    bench_pcap,
    bench_entropy,
    bench_dns,
    bench_tls,
    bench_identify,
    bench_features,
    bench_forest
);
criterion_main!(benches);
