//! Criterion benchmarks of the end-to-end pipeline stages: experiment
//! generation, flow extraction, and per-experiment analysis.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use iot_analysis::destinations::DestinationAnalysis;
use iot_analysis::encryption::EncryptionAnalysis;
use iot_analysis::flows::ExperimentFlows;
use iot_analysis::pii::scan_experiment;
use iot_geodb::registry::GeoDb;
use iot_testbed::experiment::{run_idle, run_interaction, run_power};
use iot_testbed::lab::{Lab, LabSite};
use iot_testbed::traffic::identity_of;

fn bench_generation(c: &mut Criterion) {
    let db = GeoDb::new();
    let lab = Lab::deploy(LabSite::Us);
    let echo = lab.device("Echo Dot").unwrap();
    let cam = lab.device("Wansview Cam").unwrap();
    let act = cam.spec().activity("watch").unwrap();
    c.bench_function("generate/power_echo_dot", |b| {
        let mut rep = 0;
        b.iter(|| {
            rep += 1;
            run_power(&db, black_box(echo), false, rep, 0)
        })
    });
    c.bench_function("generate/video_interaction", |b| {
        let mut rep = 0;
        b.iter(|| {
            rep += 1;
            run_interaction(&db, black_box(cam), act, act.methods[0], false, rep, 0)
        })
    });
    c.bench_function("generate/idle_hour_zmodo", |b| {
        let zmodo = lab.device("Zmodo Doorbell").unwrap();
        b.iter(|| run_idle(&db, black_box(zmodo), false, 1.0, 0))
    });
}

fn bench_analysis(c: &mut Criterion) {
    let db = GeoDb::new();
    let lab = Lab::deploy(LabSite::Us);
    let cam = lab.device("Wansview Cam").unwrap();
    let exp = run_power(&db, cam, false, 0, 0);
    let flows = ExperimentFlows::from_experiment(&exp);
    let identity = identity_of(cam);
    c.bench_function("analyze/flow_extraction", |b| {
        b.iter(|| ExperimentFlows::from_experiment(black_box(&exp)))
    });
    c.bench_function("analyze/destinations_ingest", |b| {
        b.iter(|| {
            let mut a = DestinationAnalysis::new();
            a.add_flows(black_box(&exp), black_box(&flows));
            a
        })
    });
    c.bench_function("analyze/encryption_ingest", |b| {
        b.iter(|| {
            let mut a = EncryptionAnalysis::default();
            a.add_flows(black_box(&exp), black_box(&flows));
            a
        })
    });
    c.bench_function("analyze/pii_scan", |b| {
        b.iter(|| scan_experiment(&db, black_box(&exp), black_box(&flows), &identity))
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let db = GeoDb::new();
    let lab = Lab::deploy(LabSite::Us);
    let tv = lab.device("Samsung TV").unwrap();
    c.bench_function("end_to_end/power_capture_and_analyze", |b| {
        let mut rep = 0;
        b.iter(|| {
            rep += 1;
            let exp = run_power(&db, tv, false, rep, 0);
            let flows = ExperimentFlows::from_experiment(&exp);
            let mut dest = DestinationAnalysis::new();
            dest.add_flows(&exp, &flows);
            let mut enc = EncryptionAnalysis::default();
            enc.add_flows(&exp, &flows);
            (dest, enc)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_generation, bench_analysis, bench_end_to_end
}
criterion_main!(benches);
