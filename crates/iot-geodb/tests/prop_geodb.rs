//! Property-based tests for the registry and party classifier.

use iot_geodb::geo::Region;
use iot_geodb::org::ORGS;
use iot_geodb::party::{classify, PartyType};
use iot_geodb::registry::GeoDb;
use iot_geodb::sld::sld;
use proptest::prelude::*;

fn arb_region() -> impl Strategy<Value = Region> {
    prop_oneof![
        Just(Region::Americas),
        Just(Region::Europe),
        Just(Region::AsiaPacific),
    ]
}

fn arb_known_domain() -> impl Strategy<Value = String> {
    let domains: Vec<String> = ORGS
        .iter()
        .flat_map(|o| o.domains.iter().map(|(d, _)| d.to_string()))
        .collect();
    (0..domains.len(), proptest::string::string_regex("[a-z]{1,10}").unwrap())
        .prop_map(move |(i, sub)| format!("{sub}.{}", domains[i]))
}

proptest! {
    /// Resolving any host of a known org yields an address whose WHOIS
    /// points back to that org, in a block serving the egress region or
    /// the org's home.
    #[test]
    fn resolve_whois_consistent(host in arb_known_domain(), egress in arb_region()) {
        let db = GeoDb::new();
        let ip = db.resolve(&host, egress).unwrap();
        let (org_by_ip, _, _) = db.whois_ip(ip).unwrap();
        let (org_by_domain, _) = db.org_for_domain(&host).unwrap();
        prop_assert_eq!(org_by_ip.name, org_by_domain.name);
    }

    /// Resolution is a pure function of (host, egress).
    #[test]
    fn resolve_deterministic(host in arb_known_domain(), egress in arb_region()) {
        let db = GeoDb::new();
        prop_assert_eq!(db.resolve(&host, egress), db.resolve(&host, egress));
    }

    /// Party classification is total and first-party iff org matches.
    #[test]
    fn party_first_iff_manufacturer(org_idx in 0..ORGS.len(), man_idx in 0..ORGS.len()) {
        let org = &ORGS[org_idx];
        let manufacturer = ORGS[man_idx].name;
        let role = org.domains.first().map(|(_, r)| *r);
        let p = classify(org, role, manufacturer);
        if org.name == manufacturer {
            prop_assert_eq!(p, PartyType::First);
        } else {
            prop_assert!(p.is_non_first());
        }
    }

    /// SLD extraction never panics and output is a suffix of the input.
    #[test]
    fn sld_total_and_suffix(host in "[a-z0-9.-]{0,40}") {
        if let Some(s) = sld(&host) {
            let normalized = host.trim().trim_end_matches('.').to_ascii_lowercase();
            prop_assert!(normalized.ends_with(&s), "{s} not suffix of {normalized}");
        }
    }

    /// Country inference via passport never panics for arbitrary IPs.
    #[test]
    fn passport_total(ip in any::<u32>(), egress in arb_region()) {
        let db = GeoDb::new();
        let _ = iot_geodb::passport::infer_country(&db, std::net::Ipv4Addr::from(ip), egress);
    }
}
