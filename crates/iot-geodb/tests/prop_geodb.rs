//! Property tests for the registry and party classifier, driven by the
//! in-tree deterministic PRNG with fixed seeds.

use iot_core::rng::StdRng;
use iot_geodb::geo::Region;
use iot_geodb::org::ORGS;
use iot_geodb::party::{classify, PartyType};
use iot_geodb::registry::GeoDb;
use iot_geodb::sld::sld;

const CASES: usize = 64;

fn random_region(rng: &mut StdRng) -> Region {
    match rng.gen_range(0u32..3) {
        0 => Region::Americas,
        1 => Region::Europe,
        _ => Region::AsiaPacific,
    }
}

/// A subdomain of a domain some org actually registers.
fn random_known_domain(rng: &mut StdRng) -> String {
    let domains: Vec<&str> = ORGS
        .iter()
        .flat_map(|o| o.domains.iter().map(|(d, _)| *d))
        .collect();
    let base = domains[rng.gen_range(0..domains.len())];
    let sub_len = rng.gen_range(1usize..=10);
    let sub: String = (0..sub_len)
        .map(|_| (b'a' + rng.gen_range(0u8..26)) as char)
        .collect();
    format!("{sub}.{base}")
}

/// Resolving any host of a known org yields an address whose WHOIS
/// points back to that org, in a block serving the egress region or
/// the org's home.
#[test]
fn resolve_whois_consistent() {
    let db = GeoDb::new();
    let mut rng = StdRng::seed_from_u64(0xD1);
    for _ in 0..CASES {
        let host = random_known_domain(&mut rng);
        let egress = random_region(&mut rng);
        let ip = db.resolve(&host, egress).unwrap();
        let (org_by_ip, _, _) = db.whois_ip(ip).unwrap();
        let (org_by_domain, _) = db.org_for_domain(&host).unwrap();
        assert_eq!(org_by_ip.name, org_by_domain.name);
    }
}

/// Resolution is a pure function of (host, egress).
#[test]
fn resolve_deterministic() {
    let db = GeoDb::new();
    let mut rng = StdRng::seed_from_u64(0xD2);
    for _ in 0..CASES {
        let host = random_known_domain(&mut rng);
        let egress = random_region(&mut rng);
        assert_eq!(db.resolve(&host, egress), db.resolve(&host, egress));
    }
}

/// Party classification is total and first-party iff org matches.
#[test]
fn party_first_iff_manufacturer() {
    let mut rng = StdRng::seed_from_u64(0xD3);
    for _ in 0..CASES {
        let org = &ORGS[rng.gen_range(0..ORGS.len())];
        let manufacturer = ORGS[rng.gen_range(0..ORGS.len())].name;
        let role = org.domains.first().map(|(_, r)| *r);
        let p = classify(org, role, manufacturer);
        if org.name == manufacturer {
            assert_eq!(p, PartyType::First);
        } else {
            assert!(p.is_non_first());
        }
    }
}

/// SLD extraction never panics and output is a suffix of the input.
#[test]
fn sld_total_and_suffix() {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789.-";
    let mut rng = StdRng::seed_from_u64(0xD4);
    for _ in 0..CASES {
        let len = rng.gen_range(0usize..=40);
        let host: String = (0..len)
            .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())] as char)
            .collect();
        if let Some(s) = sld(&host) {
            let normalized = host.trim().trim_end_matches('.').to_ascii_lowercase();
            assert!(normalized.ends_with(&s), "{s} not suffix of {normalized}");
        }
    }
}

/// Country inference via passport never panics for arbitrary IPs.
#[test]
fn passport_total() {
    let db = GeoDb::new();
    let mut rng = StdRng::seed_from_u64(0xD5);
    for _ in 0..CASES {
        let ip: u32 = rng.gen();
        let egress = random_region(&mut rng);
        let _ = iot_geodb::passport::infer_country(&db, std::net::Ipv4Addr::from(ip), egress);
    }
}
