//! # iot-geodb
//!
//! A synthetic-but-structured model of the Internet's administrative layer,
//! substituting for the WHOIS lookups, manual organization research, and
//! Passport geolocation used in §4.1 of *Information Exposure From Consumer
//! IoT Devices* (IMC 2019).
//!
//! The destination analysis labels each flow with:
//!
//! 1. a **second-level domain** ([`sld`]) from DNS / SNI / HTTP-Host data,
//! 2. an **organization** ([`org`], [`registry`]) via domain or IP lookup,
//! 3. a **party type** ([`party`]) — first / support / third relative to the
//!    device's manufacturer,
//! 4. a **country** ([`passport`]) via traceroute-informed inference,
//!    because "public geolocation databases alone … [are] highly
//!    inaccurate".
//!
//! The database is seeded from the organizations the paper itself names
//! (Amazon, Google, Akamai, Microsoft, Netflix, Kingsoft, 21Vianet,
//! Alibaba, Beijing Huaxiay, AT&T, Tuya, nuri.net, doubleclick, omtrdc,
//! branch.io, …) plus every device manufacturer in Table 1, each with
//! regional server presence that drives the paper's regional findings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod geo;
pub mod org;
pub mod party;
pub mod passport;
pub mod registry;
pub mod sld;

pub use geo::{Country, Region};
pub use org::{DomainRole, Organization, OrgKind};
pub use party::PartyType;
pub use registry::GeoDb;
