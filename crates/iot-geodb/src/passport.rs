//! Passport-style country inference (§4.1).
//!
//! The paper: "We use the Passport tool, which is able to infer the country
//! containing a destination IP address by combining traceroute data with
//! other IP geolocation sources. We do not use public geolocation databases
//! alone, which we found to be highly inaccurate."
//!
//! This module reproduces the *method*: it simulates a traceroute from the
//! egress point to the destination (hop countries follow the real serving
//! block), some hops are unresponsive, and inference combines the last
//! responsive hop's country with the naive database as a fallback.

use crate::geo::{Country, Region};
use crate::registry::{fnv1a, GeoDb};
use std::net::Ipv4Addr;

/// One traceroute hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// Hop country, or `None` when the router did not respond.
    pub country: Option<Country>,
}

/// Simulates a traceroute from an egress region to `dst`. The path starts
/// in the egress country, transits intermediate networks, and ends in the
/// destination block's true country. Unresponsiveness is deterministic per
/// destination.
pub fn traceroute(db: &GeoDb, dst: Ipv4Addr, egress: Region) -> Vec<Hop> {
    let src_country = egress.anchor_country();
    let dst_country = db.true_country(dst).unwrap_or(Country::Other);
    let h = fnv1a(&u32::from(dst).to_be_bytes());
    let mut hops = Vec::with_capacity(8);
    // Access + transit hops inside the egress country.
    let near = 2 + (h % 2) as usize;
    for i in 0..near {
        hops.push(Hop {
            country: responsive(h, i).then_some(src_country),
        });
    }
    // International transit (unattributable, modeled as unresponsive).
    if dst_country != src_country {
        hops.push(Hop { country: None });
    }
    // Hops inside the destination network.
    let far = 2 + ((h >> 8) % 2) as usize;
    for i in 0..far {
        hops.push(Hop {
            country: responsive(h, near + 1 + i).then_some(dst_country),
        });
    }
    hops
}

/// Deterministic per-(destination, hop) responsiveness: roughly 1 in 8 hops
/// stays silent.
fn responsive(h: u64, idx: usize) -> bool {
    (h >> (idx * 3)) & 0x07 != 0
}

/// Infers the country of `dst` the way Passport does: the country of the
/// last responsive traceroute hop, falling back to the naive geolocation
/// database when the tail of the path was silent.
pub fn infer_country(db: &GeoDb, dst: Ipv4Addr, egress: Region) -> Option<Country> {
    let hops = traceroute(db, dst, egress);
    let last_responsive = hops.iter().rev().find_map(|hop| hop.country);
    match last_responsive {
        Some(c) => Some(c),
        None => db.naive_country(dst),
    }
}

/// Accuracy of an inference method against registry ground truth, for the
/// ablation comparing Passport-style inference with the naive database.
pub fn accuracy<F>(db: &GeoDb, targets: &[Ipv4Addr], egress: Region, mut method: F) -> f64
where
    F: FnMut(&GeoDb, Ipv4Addr, Region) -> Option<Country>,
{
    if targets.is_empty() {
        return 1.0;
    }
    let correct = targets
        .iter()
        .filter(|&&ip| method(db, ip, egress) == db.true_country(ip))
        .count();
    correct as f64 / targets.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_targets(db: &GeoDb, egress: Region) -> Vec<Ipv4Addr> {
        [
            "api.amazon.com",
            "s3.amazonaws.com",
            "clients.google.com",
            "cache.akamai.net",
            "api.ksyun.com",
            "mqtt.aliyun.com",
            "updates.tplinkcloud.com",
            "api.netflix.com",
            "hub.meethue.com",
            "api.netatmo.net",
            "time.nist.gov",
            "api.smarter.am",
        ]
        .iter()
        .map(|h| db.resolve(h, egress).unwrap())
        .collect()
    }

    #[test]
    fn traceroute_ends_in_destination_country() {
        let db = GeoDb::new();
        let dst = db.resolve("api.ksyun.com", Region::Americas).unwrap();
        let hops = traceroute(&db, dst, Region::Americas);
        let last = hops.iter().rev().find_map(|h| h.country);
        assert_eq!(last, Some(Country::China));
    }

    #[test]
    fn traceroute_starts_in_egress_country() {
        let db = GeoDb::new();
        let dst = db.resolve("api.ksyun.com", Region::Europe).unwrap();
        let hops = traceroute(&db, dst, Region::Europe);
        let first = hops.iter().find_map(|h| h.country);
        assert_eq!(first, Some(Country::Ireland));
    }

    #[test]
    fn passport_beats_naive_database() {
        let db = GeoDb::new();
        for egress in [Region::Americas, Region::Europe] {
            let targets = sample_targets(&db, egress);
            let passport_acc = accuracy(&db, &targets, egress, infer_country);
            let naive_acc = accuracy(&db, &targets, egress, |db, ip, _| db.naive_country(ip));
            assert!(
                passport_acc >= naive_acc,
                "{egress:?}: passport {passport_acc} < naive {naive_acc}"
            );
            assert!(passport_acc > 0.9, "{egress:?}: passport accuracy {passport_acc}");
        }
    }

    #[test]
    fn naive_database_is_wrong_for_eu_replicas() {
        let db = GeoDb::new();
        let targets = sample_targets(&db, Region::Europe);
        let naive_acc = accuracy(&db, &targets, Region::Europe, |db, ip, _| db.naive_country(ip));
        assert!(naive_acc < 0.9, "naive database should misplace EU replicas, acc={naive_acc}");
    }

    #[test]
    fn inference_deterministic() {
        let db = GeoDb::new();
        let dst = db.resolve("api.amazon.com", Region::Americas).unwrap();
        assert_eq!(
            infer_country(&db, dst, Region::Americas),
            infer_country(&db, dst, Region::Americas)
        );
    }

    #[test]
    fn unknown_ip_falls_back_to_none() {
        let db = GeoDb::new();
        let unknown = Ipv4Addr::new(203, 0, 113, 77);
        // Traceroute's last hop carries Country::Other for unknown blocks.
        let inferred = infer_country(&db, unknown, Region::Americas);
        assert!(inferred == Some(Country::Other) || inferred.is_none());
    }

    #[test]
    fn accuracy_empty_is_one() {
        let db = GeoDb::new();
        assert_eq!(accuracy(&db, &[], Region::Americas, infer_country), 1.0);
    }
}
