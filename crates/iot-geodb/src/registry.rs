//! The synthetic IP registry: organization address blocks, domain→IP
//! resolution with region-aware replica selection, and IP→owner (WHOIS)
//! lookup.
//!
//! Every (organization, serving-region) pair holds one /16 allocation. A
//! domain resolves into the owning organization's replica block nearest the
//! querying network's egress region — the mechanism behind the paper's
//! observation that VPN egress changes *server selection* but rarely the
//! *party* contacted (§4.3).

use crate::geo::{Country, Region};
use crate::org::{DomainRole, Organization, ORGS};
use crate::sld::sld;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// One /16 address block owned by an organization in a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block {
    /// First octet of the /16 (`a.0.0.0/16`).
    pub first_octet: u8,
    /// Index into [`ORGS`].
    pub org_idx: usize,
    /// Country where the block's servers are located.
    pub country: Country,
    /// Serving region of the block.
    pub region: Region,
}

/// The assembled registry. Construction is cheap and deterministic; all
/// data is static.
#[derive(Debug, Clone)]
pub struct GeoDb {
    blocks: Vec<Block>,
    by_octet: HashMap<u8, usize>,
    by_domain: HashMap<&'static str, (usize, DomainRole)>,
}

impl Default for GeoDb {
    fn default() -> Self {
        Self::new()
    }
}

impl GeoDb {
    /// Builds the registry from the static organization table.
    pub fn new() -> Self {
        let mut blocks = Vec::new();
        let mut by_octet = HashMap::new();
        let mut next_octet = 4u8;
        let mut take_octet = || {
            // Skip private/special first octets.
            while matches!(next_octet, 10 | 100 | 127 | 169) {
                next_octet += 1;
            }
            let a = next_octet;
            next_octet += 1;
            assert!(a < 224, "address pool exhausted");
            a
        };
        for (org_idx, org) in ORGS.iter().enumerate() {
            for &region in org.presence {
                let country = if org.hq.region() == region {
                    org.hq
                } else {
                    region.anchor_country()
                };
                let first_octet = take_octet();
                by_octet.insert(first_octet, blocks.len());
                blocks.push(Block {
                    first_octet,
                    org_idx,
                    country,
                    region,
                });
            }
        }
        let mut by_domain = HashMap::new();
        for (org_idx, org) in ORGS.iter().enumerate() {
            for &(domain, role) in org.domains {
                by_domain.insert(domain, (org_idx, role));
            }
        }
        GeoDb {
            blocks,
            by_octet,
            by_domain,
        }
    }

    /// All allocated blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Looks up the organization owning a domain (by its SLD), returning
    /// the organization and the domain's role.
    pub fn org_for_domain(&self, host: &str) -> Option<(&'static Organization, DomainRole)> {
        let sld = sld(host)?;
        let (idx, role) = self.by_domain.get(sld.as_str())?;
        Some((&ORGS[*idx], *role))
    }

    /// WHOIS-style lookup: the organization owning an IP address plus the
    /// true location of the block.
    pub fn whois_ip(&self, ip: Ipv4Addr) -> Option<(&'static Organization, Country, Region)> {
        let block = self.block_of(ip)?;
        Some((&ORGS[block.org_idx], block.country, block.region))
    }

    /// The block containing an address, if any.
    pub fn block_of(&self, ip: Ipv4Addr) -> Option<&Block> {
        self.by_octet
            .get(&ip.octets()[0])
            .map(|&i| &self.blocks[i])
    }

    /// Ground-truth country of an address (what a perfect geolocation
    /// database would say).
    pub fn true_country(&self, ip: Ipv4Addr) -> Option<Country> {
        self.block_of(ip).map(|b| b.country)
    }

    /// A *naive* geolocation lookup reproducing the failure mode the paper
    /// observed in public databases: every address is attributed to the
    /// owner's headquarters country, ignoring regional replicas.
    pub fn naive_country(&self, ip: Ipv4Addr) -> Option<Country> {
        self.block_of(ip).map(|b| ORGS[b.org_idx].hq)
    }

    /// Resolves a host name as seen from `egress`: picks the owning
    /// organization's replica block in the egress region when one exists,
    /// otherwise the block in the organization's home region, otherwise the
    /// first allocated block. The host part of the address is a stable hash
    /// of the full host name.
    pub fn resolve(&self, host: &str, egress: Region) -> Option<Ipv4Addr> {
        let s = sld(host)?;
        let &(org_idx, _) = self.by_domain.get(s.as_str())?;
        let candidates: Vec<&Block> = self
            .blocks
            .iter()
            .filter(|b| b.org_idx == org_idx)
            .collect();
        let org = &ORGS[org_idx];
        let block = candidates
            .iter()
            .find(|b| b.region == egress)
            .or_else(|| candidates.iter().find(|b| b.region == org.hq.region()))
            .or_else(|| candidates.first())?;
        let h = fnv1a(host.as_bytes());
        let h1 = ((h >> 8) & 0xff) as u8;
        let h2 = (h & 0xff) as u8;
        Some(Ipv4Addr::new(
            block.first_octet,
            (h >> 16 & 0xff) as u8,
            h1,
            h2.clamp(1, 254),
        ))
    }

    /// Picks a pseudo-random host inside an organization's block for
    /// traffic that is addressed by IP without DNS (e.g. camera P2P
    /// relays). `salt` varies the host selected.
    pub fn host_in_org(&self, org_name: &str, region: Region, salt: u64) -> Option<Ipv4Addr> {
        let org_idx = ORGS.iter().position(|o| o.name == org_name)?;
        let candidates: Vec<&Block> = self
            .blocks
            .iter()
            .filter(|b| b.org_idx == org_idx)
            .collect();
        // Unlike replica selection, literal-IP peers (P2P relays) are
        // spread across every region the organization covers — a camera's
        // rendezvous partners live in arbitrary residential networks.
        let _ = region;
        let block = candidates.get(fnv1a(&salt.to_le_bytes()) as usize % candidates.len().max(1))
            .or_else(|| candidates.first())?;
        let h = fnv1a(&salt.to_be_bytes());
        Some(Ipv4Addr::new(
            block.first_octet,
            (h >> 16 & 0xff) as u8,
            (h >> 8 & 0xff) as u8,
            ((h & 0xff) as u8).clamp(1, 254),
        ))
    }
}

/// FNV-1a 64-bit hash — stable across runs and platforms, unlike
/// `DefaultHasher`.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_disjoint() {
        let db = GeoDb::new();
        let mut seen = std::collections::HashSet::new();
        for b in db.blocks() {
            assert!(seen.insert(b.first_octet), "octet {} reused", b.first_octet);
            assert!(!matches!(b.first_octet, 10 | 100 | 127 | 169 | 192));
        }
    }

    #[test]
    fn resolution_is_deterministic() {
        let db = GeoDb::new();
        let a = db.resolve("device-metrics.amazon.com", Region::Americas).unwrap();
        let b = db.resolve("device-metrics.amazon.com", Region::Americas).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_hosts_same_org_share_block() {
        let db = GeoDb::new();
        let a = db.resolve("api.amazon.com", Region::Americas).unwrap();
        let b = db.resolve("device-metrics.amazon.com", Region::Americas).unwrap();
        assert_eq!(a.octets()[0], b.octets()[0], "same /16");
        assert_ne!(a, b, "distinct hosts");
    }

    #[test]
    fn egress_region_selects_replica() {
        let db = GeoDb::new();
        let us = db.resolve("kinesis.amazonaws.com", Region::Americas).unwrap();
        let eu = db.resolve("kinesis.amazonaws.com", Region::Europe).unwrap();
        assert_ne!(us.octets()[0], eu.octets()[0]);
        assert_eq!(db.true_country(us), Some(Country::UnitedStates));
        assert_eq!(db.true_country(eu), Some(Country::Ireland));
    }

    #[test]
    fn org_without_regional_presence_serves_from_home() {
        let db = GeoDb::new();
        // Kingsoft only has Asia-Pacific presence: all egress points land
        // in the China block.
        let us = db.resolve("api.ksyun.com", Region::Americas).unwrap();
        let eu = db.resolve("api.ksyun.com", Region::Europe).unwrap();
        assert_eq!(us, eu);
        assert_eq!(db.true_country(us), Some(Country::China));
    }

    #[test]
    fn whois_roundtrip() {
        let db = GeoDb::new();
        let ip = db.resolve("updates.tplinkcloud.com", Region::Americas).unwrap();
        let (org, _, region) = db.whois_ip(ip).unwrap();
        assert_eq!(org.name, "TP-Link");
        assert_eq!(region, Region::Americas);
    }

    #[test]
    fn org_for_domain_uses_sld() {
        let db = GeoDb::new();
        let (org, role) = db.org_for_domain("eu-west-1.ec2.amazonaws.com").unwrap();
        assert_eq!(org.name, "Amazon");
        assert_eq!(role, DomainRole::Infrastructure);
        assert!(db.org_for_domain("unknown-vendor.example").is_none());
    }

    #[test]
    fn naive_geolocation_wrong_for_replicas() {
        // The paper: public geolocation databases are "highly inaccurate".
        let db = GeoDb::new();
        let eu_replica = db.resolve("s3.amazonaws.com", Region::Europe).unwrap();
        assert_eq!(db.true_country(eu_replica), Some(Country::Ireland));
        assert_eq!(db.naive_country(eu_replica), Some(Country::UnitedStates));
    }

    #[test]
    fn unknown_ip_unresolvable() {
        let db = GeoDb::new();
        assert!(db.whois_ip(Ipv4Addr::new(203, 0, 113, 9)).is_none());
        assert!(db.true_country(Ipv4Addr::new(198, 51, 100, 1)).is_none());
    }

    #[test]
    fn host_in_org_varies_with_salt() {
        let db = GeoDb::new();
        let a = db.host_in_org("Residential Broadband", Region::Americas, 1).unwrap();
        let b = db.host_in_org("Residential Broadband", Region::Americas, 2).unwrap();
        assert_ne!(a, b);
        let (org, _, _) = db.whois_ip(a).unwrap();
        assert_eq!(org.name, "Residential Broadband");
    }

    #[test]
    fn fnv_stable() {
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
    }
}
