//! Party classification (§2.1, §4.1).
//!
//! * **First party** — the device manufacturer or a related company
//!   responsible for fulfilling the device's functionality.
//! * **Support party** — a company providing outsourced computing (CDN,
//!   cloud hosting).
//! * **Third party** — everything else, including advertising and
//!   analytics companies.

use crate::org::{DomainRole, Organization, OrgKind};
use std::fmt;

/// Classification of a destination relative to a device's manufacturer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PartyType {
    /// The manufacturer itself (or a related first-party service).
    First,
    /// Outsourced computing: CDN and cloud providers.
    Support,
    /// Advertisers, trackers, content services, ISPs, other manufacturers.
    Third,
}

impl PartyType {
    /// True for support or third parties — the paper's "non-first party".
    pub fn is_non_first(self) -> bool {
        self != PartyType::First
    }
}

impl fmt::Display for PartyType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PartyType::First => "first",
            PartyType::Support => "support",
            PartyType::Third => "third",
        })
    }
}

/// Classifies a destination owned by `org` (via domain role `role`, when a
/// domain was identified) for a device made by `manufacturer_org`.
///
/// Rules, mirroring §4.1's procedure:
/// 1. The destination organization matching the device manufacturer ⇒
///    **first party**.
/// 2. Otherwise, a company whose business (or the specific domain's role)
///    is providing computing resources ⇒ **support party**.
/// 3. Anything else ⇒ **third party**.
pub fn classify(
    org: &Organization,
    role: Option<DomainRole>,
    manufacturer_org: &str,
) -> PartyType {
    if org.name == manufacturer_org {
        return PartyType::First;
    }
    match role {
        Some(DomainRole::Infrastructure) => PartyType::Support,
        Some(DomainRole::Primary) => match org.kind {
            OrgKind::Cdn | OrgKind::Cloud => PartyType::Support,
            _ => PartyType::Third,
        },
        // No domain identified: fall back to the organization's business,
        // as the paper does when only the IP owner is known.
        None => match org.kind {
            OrgKind::Cdn | OrgKind::Cloud => PartyType::Support,
            _ => PartyType::Third,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::org::org_by_name;

    #[test]
    fn manufacturer_is_first_party() {
        let samsung = org_by_name("Samsung").unwrap();
        assert_eq!(
            classify(samsung, Some(DomainRole::Primary), "Samsung"),
            PartyType::First
        );
    }

    #[test]
    fn aws_is_support_for_everyone_else() {
        let amazon = org_by_name("Amazon").unwrap();
        assert_eq!(
            classify(amazon, Some(DomainRole::Infrastructure), "Samsung"),
            PartyType::Support
        );
    }

    #[test]
    fn amazon_is_first_for_amazon_devices() {
        let amazon = org_by_name("Amazon").unwrap();
        // Echo contacting amazon.com or even AWS: first party — Amazon
        // fulfills the device functionality itself.
        assert_eq!(
            classify(amazon, Some(DomainRole::Primary), "Amazon"),
            PartyType::First
        );
        assert_eq!(
            classify(amazon, Some(DomainRole::Infrastructure), "Amazon"),
            PartyType::First
        );
    }

    #[test]
    fn netflix_is_third_party() {
        // "Nearly all TV devices contact Netflix even though we never
        // configured any TV with a Netflix account" — a third party.
        let netflix = org_by_name("Netflix").unwrap();
        assert_eq!(
            classify(netflix, Some(DomainRole::Primary), "Samsung"),
            PartyType::Third
        );
    }

    #[test]
    fn trackers_are_third_party() {
        for name in ["DoubleClick", "Adobe Analytics", "Branch Metrics", "Facebook"] {
            let org = org_by_name(name).unwrap();
            assert_eq!(
                classify(org, Some(DomainRole::Primary), "Roku"),
                PartyType::Third,
                "{name}"
            );
        }
    }

    #[test]
    fn cloud_primary_domain_still_support() {
        // kingsoft.com (Primary role, Cloud kind) counts as support.
        let kingsoft = org_by_name("Kingsoft").unwrap();
        assert_eq!(
            classify(kingsoft, Some(DomainRole::Primary), "Xiaomi"),
            PartyType::Support
        );
    }

    #[test]
    fn unlabeled_ip_classified_by_org_business() {
        let residential = org_by_name("Residential Broadband").unwrap();
        assert_eq!(classify(residential, None, "Wansview"), PartyType::Third);
        let akamai = org_by_name("Akamai").unwrap();
        assert_eq!(classify(akamai, None, "Wansview"), PartyType::Support);
    }

    #[test]
    fn non_first_helper() {
        assert!(!PartyType::First.is_non_first());
        assert!(PartyType::Support.is_non_first());
        assert!(PartyType::Third.is_non_first());
    }

    #[test]
    fn display() {
        assert_eq!(PartyType::Support.to_string(), "support");
    }
}
