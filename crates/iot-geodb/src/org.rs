//! Organizations of the synthetic Internet.
//!
//! The table below is seeded from every organization the paper names in its
//! destination analysis (§4.2–4.3, Tables 2–4) plus the manufacturer of
//! every device in Table 1. Each organization has a primary business
//! ([`OrgKind`]), a headquarters country, the regions where it operates
//! servers, and the second-level domains it owns, each tagged with the role
//! the domain plays ([`DomainRole`]).

use crate::geo::{Country, Region};

/// Primary business of an organization, which drives party classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrgKind {
    /// Builds and sells IoT devices.
    Manufacturer,
    /// Sells outsourced computing (IaaS/PaaS) — a support party.
    Cloud,
    /// Sells content delivery — a support party.
    Cdn,
    /// Advertising business — a third party.
    Advertising,
    /// Analytics / tracking business — a third party.
    Analytics,
    /// Internet service provider — a third party when contacted directly.
    Isp,
    /// Streaming / content business — a third party.
    ContentProvider,
}

/// What a domain is used for, within its owning organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DomainRole {
    /// The organization's own service (e.g. `amazon.com`, `netflix.com`).
    Primary,
    /// Outsourced-infrastructure hosting for other companies
    /// (e.g. `amazonaws.com`, `fastly.net`).
    Infrastructure,
}

/// A static organization record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Organization {
    /// Organization name as used in reports (Table 4 rows).
    pub name: &'static str,
    /// Primary business.
    pub kind: OrgKind,
    /// Headquarters country (where its origin servers sit).
    pub hq: Country,
    /// Regions where the organization operates serving replicas.
    pub presence: &'static [Region],
    /// Owned second-level domains and their roles.
    pub domains: &'static [(&'static str, DomainRole)],
}

use Country::*;
use DomainRole::{Infrastructure as Infra, Primary as Prim};
use OrgKind::*;
use Region::{Americas as AM, AsiaPacific as AP, Europe as EU};

/// The complete organization table.
pub const ORGS: &[Organization] = &[
    // ——— Support-party hosting giants (Table 4 top rows) ———
    Organization { name: "Amazon", kind: Cloud, hq: UnitedStates, presence: &[AM, EU, AP],
        domains: &[("amazon.com", Prim), ("amazonaws.com", Infra), ("cloudfront.net", Infra), ("a2z.com", Prim), ("blinkforhome.com", Prim), ("ring.com", Prim)] },
    Organization { name: "Google", kind: Cloud, hq: UnitedStates, presence: &[AM, EU, AP],
        domains: &[("google.com", Prim), ("googleapis.com", Infra), ("gstatic.com", Infra), ("nest.com", Prim), ("googlevideo.com", Prim)] },
    Organization { name: "Akamai", kind: Cdn, hq: UnitedStates, presence: &[AM, EU, AP],
        domains: &[("akamai.net", Infra), ("akamaihd.net", Infra), ("akadns.net", Infra)] },
    Organization { name: "Microsoft", kind: Cloud, hq: UnitedStates, presence: &[AM, EU],
        domains: &[("microsoft.com", Prim), ("azure.com", Infra), ("windows.com", Prim), ("msftncsi.com", Prim)] },
    // Limited geodiversity (Figure 2: "a majority of device traffic
    // terminates in the US for both labs, likely due to reliance on
    // infrastructure with limited geodiversity").
    Organization { name: "Netflix", kind: ContentProvider, hq: UnitedStates, presence: &[AM],
        domains: &[("netflix.com", Prim), ("nflxvideo.net", Prim), ("nflxso.net", Prim)] },
    Organization { name: "Kingsoft", kind: Cloud, hq: China, presence: &[AP],
        domains: &[("ksyun.com", Infra), ("kingsoft.com", Prim)] },
    Organization { name: "21Vianet", kind: Cloud, hq: China, presence: &[AP],
        domains: &[("21vianet.com", Infra)] },
    Organization { name: "Alibaba", kind: Cloud, hq: China, presence: &[AP],
        domains: &[("aliyun.com", Infra), ("alibabacloud.com", Infra), ("alibaba.com", Prim)] },
    Organization { name: "Beijing Huaxiay", kind: Cloud, hq: China, presence: &[AP],
        domains: &[("huaxiay.com", Infra)] },
    Organization { name: "AT&T", kind: Isp, hq: UnitedStates, presence: &[AM],
        domains: &[("att.com", Prim)] },
    Organization { name: "Tuya", kind: Cloud, hq: China, presence: &[AM, EU, AP],
        domains: &[("tuyaus.com", Infra), ("tuyaeu.com", Infra), ("tuyacn.com", Infra)] },
    Organization { name: "Nuri Telecom", kind: Isp, hq: SouthKorea, presence: &[AP],
        domains: &[("nuri.net", Prim)] },
    Organization { name: "Fastly", kind: Cdn, hq: UnitedStates, presence: &[AM, EU],
        domains: &[("fastly.net", Infra)] },
    Organization { name: "Edgecast", kind: Cdn, hq: UnitedStates, presence: &[AM, EU],
        domains: &[("edgecastcdn.net", Infra)] },
    Organization { name: "HVVC", kind: Cloud, hq: UnitedStates, presence: &[AM],
        domains: &[("hvvc.us", Infra)] },
    Organization { name: "NTP Pool", kind: Cdn, hq: UnitedStates, presence: &[AM, EU, AP],
        domains: &[("ntp.org", Infra), ("nist.gov", Infra)] },
    // ——— Third parties the paper calls out ———
    Organization { name: "Facebook", kind: Advertising, hq: UnitedStates, presence: &[AM, EU],
        domains: &[("facebook.com", Prim), ("fbcdn.net", Prim)] },
    Organization { name: "DoubleClick", kind: Advertising, hq: UnitedStates, presence: &[AM, EU],
        domains: &[("doubleclick.net", Prim)] },
    Organization { name: "Adobe Analytics", kind: Analytics, hq: UnitedStates, presence: &[AM],
        domains: &[("omtrdc.net", Prim), ("adobe.com", Prim)] },
    Organization { name: "WOW Internet", kind: Isp, hq: UnitedStates, presence: &[AM],
        domains: &[("wowinc.com", Prim)] },
    Organization { name: "Branch Metrics", kind: Analytics, hq: UnitedStates, presence: &[AM],
        domains: &[("branch.io", Prim)] },
    Organization { name: "Residential Broadband", kind: Isp, hq: UnitedStates, presence: &[AM, EU, AP],
        domains: &[] },
    // ——— Device manufacturers (Table 1) ———
    Organization { name: "Samsung", kind: Manufacturer, hq: SouthKorea, presence: &[AP],
        domains: &[("samsung.com", Prim), ("samsungcloud.com", Prim), ("smartthings.com", Prim), ("samsungcloudsolution.com", Prim), ("samsungotn.net", Prim)] },
    Organization { name: "LG", kind: Manufacturer, hq: SouthKorea, presence: &[AP],
        domains: &[("lge.com", Prim), ("lgtvsdp.com", Prim), ("lgsmartad.com", Prim)] },
    Organization { name: "Xiaomi", kind: Manufacturer, hq: China, presence: &[AP],
        domains: &[("mi.com", Prim), ("xiaomi.com", Prim), ("miwifi.com", Prim)] },
    Organization { name: "Yi Technology", kind: Manufacturer, hq: China, presence: &[AP],
        domains: &[("xiaoyi.com", Prim)] },
    Organization { name: "TP-Link", kind: Manufacturer, hq: China, presence: &[AM, AP],
        domains: &[("tplinkcloud.com", Prim), ("tp-link.com", Prim)] },
    Organization { name: "Belkin", kind: Manufacturer, hq: UnitedStates, presence: &[AM],
        domains: &[("belkin.com", Prim), ("xbcs.net", Prim)] },
    Organization { name: "Philips", kind: Manufacturer, hq: Netherlands, presence: &[EU, AM],
        domains: &[("meethue.com", Prim), ("philips.com", Prim)] },
    Organization { name: "D-Link", kind: Manufacturer, hq: China, presence: &[AM, AP],
        domains: &[("dlink.com", Prim), ("mydlink.com", Prim)] },
    Organization { name: "Amcrest", kind: Manufacturer, hq: UnitedStates, presence: &[AM],
        domains: &[("amcrest.com", Prim), ("amcrestcloud.com", Prim)] },
    Organization { name: "Wansview", kind: Manufacturer, hq: China, presence: &[AP],
        domains: &[("wansview.com", Prim)] },
    Organization { name: "Zmodo", kind: Manufacturer, hq: China, presence: &[AM, AP],
        domains: &[("zmodo.com", Prim), ("meshare.com", Prim)] },
    Organization { name: "Lefun", kind: Manufacturer, hq: China, presence: &[AP],
        domains: &[("lefunsmart.com", Prim)] },
    Organization { name: "Luohe", kind: Manufacturer, hq: China, presence: &[AP],
        domains: &[("luohecam.com", Prim)] },
    Organization { name: "Microseven", kind: Manufacturer, hq: UnitedStates, presence: &[AM],
        domains: &[("microseven.com", Prim)] },
    Organization { name: "WiMaker", kind: Manufacturer, hq: China, presence: &[AP],
        domains: &[("wimakercam.com", Prim)] },
    Organization { name: "King Technology", kind: Manufacturer, hq: China, presence: &[AP],
        domains: &[("kingdoorbell.com", Prim)] },
    Organization { name: "Insteon", kind: Manufacturer, hq: UnitedStates, presence: &[AM],
        domains: &[("insteon.com", Prim)] },
    Organization { name: "Osram", kind: Manufacturer, hq: Germany, presence: &[EU, AM],
        domains: &[("osram.com", Prim), ("lightify.com", Prim)] },
    Organization { name: "Sengled", kind: Manufacturer, hq: China, presence: &[AM, AP],
        domains: &[("sengled.com", Prim)] },
    Organization { name: "Wink", kind: Manufacturer, hq: UnitedStates, presence: &[AM],
        domains: &[("wink.com", Prim)] },
    Organization { name: "Honeywell", kind: Manufacturer, hq: UnitedStates, presence: &[AM],
        domains: &[("honeywell.com", Prim)] },
    Organization { name: "MagicHome", kind: Manufacturer, hq: China, presence: &[AP],
        domains: &[("magichue.net", Prim)] },
    Organization { name: "Flux", kind: Manufacturer, hq: China, presence: &[AP],
        domains: &[("fluxsmart.com", Prim)] },
    Organization { name: "Roku", kind: Manufacturer, hq: UnitedStates, presence: &[AM, EU],
        domains: &[("roku.com", Prim), ("rokutime.com", Prim)] },
    Organization { name: "Apple", kind: Manufacturer, hq: UnitedStates, presence: &[AM, EU, AP],
        domains: &[("apple.com", Prim), ("icloud.com", Prim), ("mzstatic.com", Prim)] },
    Organization { name: "Harman", kind: Manufacturer, hq: UnitedStates, presence: &[AM],
        domains: &[("harman.com", Prim)] },
    Organization { name: "Allure", kind: Manufacturer, hq: UnitedStates, presence: &[AM],
        domains: &[("alluresmartspeaker.com", Prim)] },
    Organization { name: "Anova", kind: Manufacturer, hq: UnitedStates, presence: &[AM],
        domains: &[("anovaculinary.com", Prim)] },
    Organization { name: "Behmor", kind: Manufacturer, hq: UnitedStates, presence: &[AM],
        domains: &[("behmor.com", Prim)] },
    Organization { name: "GE Appliances", kind: Manufacturer, hq: UnitedStates, presence: &[AM],
        domains: &[("geappliances.com", Prim)] },
    Organization { name: "Netatmo", kind: Manufacturer, hq: France, presence: &[EU, AM],
        domains: &[("netatmo.com", Prim), ("netatmo.net", Prim)] },
    Organization { name: "Smarter", kind: Manufacturer, hq: UnitedKingdom, presence: &[EU],
        domains: &[("smarter.am", Prim)] },
    Organization { name: "Bosiwo", kind: Manufacturer, hq: China, presence: &[AP],
        domains: &[("bosiwocam.com", Prim)] },
];

/// Looks an organization up by exact name.
pub fn org_by_name(name: &str) -> Option<&'static Organization> {
    ORGS.iter().find(|o| o.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn names_unique() {
        let mut seen = HashSet::new();
        for o in ORGS {
            assert!(seen.insert(o.name), "duplicate org {}", o.name);
        }
    }

    #[test]
    fn domains_unique_across_orgs() {
        let mut seen = HashSet::new();
        for o in ORGS {
            for (d, _) in o.domains {
                assert!(seen.insert(*d), "domain {d} owned by two orgs");
            }
        }
    }

    #[test]
    fn every_org_has_presence() {
        for o in ORGS {
            assert!(!o.presence.is_empty(), "{} has no presence", o.name);
        }
    }

    #[test]
    fn paper_named_orgs_present() {
        for name in [
            "Amazon", "Google", "Akamai", "Microsoft", "Netflix", "Kingsoft", "21Vianet",
            "Alibaba", "Beijing Huaxiay", "AT&T", "Tuya", "Nuri Telecom", "Facebook",
            "DoubleClick", "Adobe Analytics", "WOW Internet", "Branch Metrics", "Fastly",
            "Edgecast", "HVVC",
        ] {
            assert!(org_by_name(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn infrastructure_domains_belong_to_support_kinds() {
        for o in ORGS {
            for (d, role) in o.domains {
                if *role == DomainRole::Infrastructure {
                    assert!(
                        matches!(o.kind, OrgKind::Cloud | OrgKind::Cdn),
                        "{d} is Infrastructure but {} is {:?}",
                        o.name,
                        o.kind
                    );
                }
            }
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(org_by_name("Amazon").unwrap().hq, Country::UnitedStates);
        assert!(org_by_name("Nonexistent").is_none());
    }
}
