//! Second-level-domain extraction (§4.1).
//!
//! The paper keys its destination analysis on the SLD of each contacted
//! host, e.g. `device-metrics-us.amazon.com` → `amazon.com`. Correct SLD
//! extraction requires knowing multi-label public suffixes (`co.uk`,
//! `com.cn`, …); this module embeds the slice of the public-suffix list the
//! simulated Internet uses.

/// Multi-label public suffixes recognized in addition to single-label TLDs.
const MULTI_LABEL_SUFFIXES: &[&str] = &[
    "co.uk", "org.uk", "ac.uk", "gov.uk", "com.cn", "net.cn", "org.cn", "co.kr", "or.kr",
    "co.jp", "ne.jp", "com.sg", "com.au", "co.in", "com.br",
];

/// Extracts the second-level domain of a host name: the registrable domain
/// one label below the public suffix. Returns the input lowercased when it
/// has too few labels to split (e.g. a bare TLD), and `None` for empty
/// input or IP-address-like strings.
pub fn sld(host: &str) -> Option<String> {
    let host = host.trim().trim_end_matches('.').to_ascii_lowercase();
    if host.is_empty() || host.bytes().all(|b| b.is_ascii_digit() || b == b'.') {
        return None;
    }
    let labels: Vec<&str> = host.split('.').collect();
    if labels.iter().any(|l| l.is_empty()) {
        return None;
    }
    if labels.len() == 1 {
        return Some(host);
    }
    // Find the longest matching public suffix.
    let last2 = labels[labels.len() - 2..].join(".");
    let suffix_len = if MULTI_LABEL_SUFFIXES.contains(&last2.as_str()) {
        2
    } else {
        1
    };
    if labels.len() <= suffix_len {
        return Some(host);
    }
    Some(labels[labels.len() - suffix_len - 1..].join("."))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_com() {
        assert_eq!(sld("device-metrics-us.amazon.com").as_deref(), Some("amazon.com"));
        assert_eq!(sld("amazon.com").as_deref(), Some("amazon.com"));
    }

    #[test]
    fn multi_label_suffixes() {
        assert_eq!(sld("api.bbc.co.uk").as_deref(), Some("bbc.co.uk"));
        assert_eq!(sld("cdn.aliyun.com.cn").as_deref(), Some("aliyun.com.cn"));
        assert_eq!(sld("www.samsung.co.kr").as_deref(), Some("samsung.co.kr"));
    }

    #[test]
    fn deep_subdomains() {
        assert_eq!(
            sld("a.b.c.d.ec2.amazonaws.com").as_deref(),
            Some("amazonaws.com")
        );
    }

    #[test]
    fn case_and_trailing_dot_normalized() {
        assert_eq!(sld("API.Amazon.COM.").as_deref(), Some("amazon.com"));
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(sld(""), None);
        assert_eq!(sld("10.0.0.1"), None);
        assert_eq!(sld("com").as_deref(), Some("com"));
        assert_eq!(sld("co.uk").as_deref(), Some("co.uk"));
        assert_eq!(sld("a..b"), None);
    }
}
