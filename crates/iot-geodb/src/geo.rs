//! Countries and serving regions.

use std::fmt;

/// Countries appearing in the synthetic Internet model. The set mirrors the
/// destination countries reported in the paper's Figure 2 (US, UK/Europe,
/// China, Korea, Japan, plus long-tail destinations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Country {
    UnitedStates,
    UnitedKingdom,
    Ireland,
    Germany,
    Netherlands,
    France,
    China,
    SouthKorea,
    Japan,
    Singapore,
    Australia,
    India,
    Canada,
    Brazil,
    Other,
}

impl Country {
    /// ISO-3166-like two-letter code used in reports.
    pub fn code(self) -> &'static str {
        match self {
            Country::UnitedStates => "US",
            Country::UnitedKingdom => "GB",
            Country::Ireland => "IE",
            Country::Germany => "DE",
            Country::Netherlands => "NL",
            Country::France => "FR",
            Country::China => "CN",
            Country::SouthKorea => "KR",
            Country::Japan => "JP",
            Country::Singapore => "SG",
            Country::Australia => "AU",
            Country::India => "IN",
            Country::Canada => "CA",
            Country::Brazil => "BR",
            Country::Other => "XX",
        }
    }

    /// The serving region this country belongs to.
    pub fn region(self) -> Region {
        match self {
            Country::UnitedStates | Country::Canada | Country::Brazil => Region::Americas,
            Country::UnitedKingdom
            | Country::Ireland
            | Country::Germany
            | Country::Netherlands
            | Country::France => Region::Europe,
            Country::China
            | Country::SouthKorea
            | Country::Japan
            | Country::Singapore
            | Country::Australia
            | Country::India => Region::AsiaPacific,
            Country::Other => Region::Americas,
        }
    }

    /// All concrete countries (excluding [`Country::Other`]).
    pub fn all() -> &'static [Country] {
        &[
            Country::UnitedStates,
            Country::UnitedKingdom,
            Country::Ireland,
            Country::Germany,
            Country::Netherlands,
            Country::France,
            Country::China,
            Country::SouthKorea,
            Country::Japan,
            Country::Singapore,
            Country::Australia,
            Country::India,
            Country::Canada,
            Country::Brazil,
        ]
    }
}

impl fmt::Display for Country {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// Coarse serving regions used for replica selection. The labs' egress
/// points map onto these: the US lab egresses in [`Region::Americas`], the
/// UK lab in [`Region::Europe`], and the VPN swaps them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Region {
    /// North and South America.
    Americas,
    /// Europe.
    Europe,
    /// Asia-Pacific.
    AsiaPacific,
}

impl Region {
    /// A representative country for servers placed "in" a region.
    pub fn anchor_country(self) -> Country {
        match self {
            Region::Americas => Country::UnitedStates,
            Region::Europe => Country::Ireland,
            Region::AsiaPacific => Country::Singapore,
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Region::Americas => "Americas",
            Region::Europe => "Europe",
            Region::AsiaPacific => "Asia-Pacific",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_unique() {
        let mut codes: Vec<&str> = Country::all().iter().map(|c| c.code()).collect();
        codes.sort();
        codes.dedup();
        assert_eq!(codes.len(), Country::all().len());
    }

    #[test]
    fn regions_assigned() {
        assert_eq!(Country::UnitedStates.region(), Region::Americas);
        assert_eq!(Country::UnitedKingdom.region(), Region::Europe);
        assert_eq!(Country::China.region(), Region::AsiaPacific);
        assert_eq!(Country::SouthKorea.region(), Region::AsiaPacific);
    }

    #[test]
    fn anchors_live_in_their_region() {
        for r in [Region::Americas, Region::Europe, Region::AsiaPacific] {
            assert_eq!(r.anchor_country().region(), r);
        }
    }

    #[test]
    fn display_is_code() {
        assert_eq!(Country::UnitedKingdom.to_string(), "GB");
        assert_eq!(Region::Europe.to_string(), "Europe");
    }
}
