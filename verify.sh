#!/bin/sh
# Tier-1 verification gate, fully offline.
#
# 1. Release build + full test suite with the network disabled — proves
#    the zero-dependency policy holds (no crates.io access is ever
#    needed).
# 2. A quick-scale run of the serial-vs-parallel pipeline benchmark.
#    bench_pipeline exits non-zero if the parallel report diverges from
#    the serial one, so divergence fails this script.
set -e
cd "$(dirname "$0")"
export CARGO_NET_OFFLINE=true

echo "=== tier-1: cargo build --release ==="
cargo build --release

echo "=== tier-1: cargo test -q ==="
cargo test -q

echo "=== workspace tests ==="
cargo test -q --workspace

echo "=== bench: serial vs parallel pipeline (quick scale) ==="
cargo build --release -p iot-bench --bin bench_pipeline
# Write to a scratch path so routine verification never clobbers the
# committed BENCH_pipeline.json baseline (regenerate that explicitly
# with the bench binary's defaults).
IOT_SCALE=quick IOT_BENCH_ITERS="${IOT_BENCH_ITERS:-1}" \
  IOT_BENCH_OUT="${IOT_BENCH_OUT:-target/verify_bench.json}" \
  ./target/release/bench_pipeline

echo "verify.sh: OK"
