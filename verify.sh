#!/bin/sh
# Tier-1 verification gate, fully offline.
#
# 1. Release build + full test suite with the network disabled — proves
#    the zero-dependency policy holds (no crates.io access is ever
#    needed).
# 2. A quick-scale run of the serial-vs-parallel pipeline benchmark,
#    with observability enabled so it also emits an obs run report.
#    bench_pipeline exits non-zero if the parallel report diverges from
#    the serial one, so divergence fails this script.
# 3. obs_check: the observability smoke test — the run report must parse,
#    its stage counters must be non-zero, the measured instrumentation
#    overhead must stay under 5%, the Chrome trace and Prometheus
#    artifacts written by the bench must be well-formed, and the
#    deterministic event trace must have matched across drivers.
# 4. obs_serve_check: live-telemetry endpoint smoke — /metrics, /trace,
#    and /progress answered over real sockets during an instrumented
#    (and lightly faulted) campaign, with the ingest ledger reconciling.
# 5. bench_trend: appends this run to a scratch copy of the committed
#    bench history and fails on a >15% serial-median regression against
#    the recent same-host baseline (cross-host entries are warn-only).
# 6. chaos_check: the fault-injection smoke test — a seeded sweep of
#    degraded-capture rates plus an injected-panic stage. Gates: no
#    escaped panics, byte-identical faulted reports across worker
#    counts, exact ingest-ledger reconciliation, and bounded headline
#    drift at low fault rates.
# 7. supervise smoke: a quick campaign is journaled and SIGKILLed
#    mid-run, then resumed from the (possibly torn) journal; the
#    resumed report must be byte-identical to an uninterrupted
#    reference run. This drives the checkpoint/resume path through the
#    real binary and a real kill, not just in-process truncation.
# 8. oracle_check: the correctness oracle — conservation-law invariants
#    over the finished report (ledger reconciliation, percentage sums,
#    catalog-backed PII findings, recounts from live accumulators),
#    metamorphic relations (order permutation, rep relabeling, device
#    removal, VPN isolation), field-by-field differential runs across
#    every driver, and invariant classes over the committed
#    results/*.json table artifacts (well-formed emit shape, pinned row
#    counts, percentage sums). Any violation fails this script.
#    Opt-in: ORACLE_SCALE=medium (or the --nightly flag) additionally
#    reruns the oracle on the medium campaign grid, warn-only, with the
#    instrumented allocator counting so the run prints the campaign's
#    heap high-water and kernel peak RSS at that scale.
#
# Flags:
#   --nightly   run the deeper, slower sweeps too (currently: the
#               warn-only medium-scale oracle with heap accounting).
set -e
cd "$(dirname "$0")"
export CARGO_NET_OFFLINE=true

NIGHTLY=0
for arg in "$@"; do
  case "$arg" in
    --nightly) NIGHTLY=1 ;;
    *) echo "verify.sh: unknown argument '$arg' (supported: --nightly)" >&2; exit 2 ;;
  esac
done

echo "=== tier-1: cargo build --release ==="
cargo build --release

echo "=== tier-1: cargo test -q ==="
cargo test -q

echo "=== workspace tests ==="
cargo test -q --workspace

echo "=== bench: serial vs parallel pipeline (quick scale, obs on) ==="
cargo build --release -p iot-bench \
  --bin bench_pipeline --bin obs_check --bin obs_serve_check \
  --bin bench_trend --bin chaos_check --bin oracle_check
# Write to scratch paths so routine verification never clobbers the
# committed BENCH_pipeline.json baseline (regenerate that explicitly
# with the bench binary's defaults). IOT_OBS=1 makes the run emit the
# observability report that obs_check validates below; the benchmark's
# obs-off baselines force instrumentation off internally, so the env var
# does not skew them.
IOT_SCALE=quick IOT_BENCH_ITERS="${IOT_BENCH_ITERS:-3}" \
  IOT_BENCH_OUT="${IOT_BENCH_OUT:-target/verify_bench.json}" \
  IOT_OBS=1 IOT_OBS_OUT="${IOT_OBS_OUT:-target/obs_run.json}" \
  IOT_OBS_TRACE_OUT="${IOT_OBS_TRACE_OUT:-target/obs_trace.json}" \
  IOT_OBS_PROM_OUT="${IOT_OBS_PROM_OUT:-target/obs_metrics.prom}" \
  ./target/release/bench_pipeline

echo "=== obs smoke: run report + overhead gate + exporter artifacts ==="
./target/release/obs_check \
  "${IOT_OBS_OUT:-target/obs_run.json}" \
  "${IOT_BENCH_OUT:-target/verify_bench.json}" \
  BENCH_pipeline.json \
  "${IOT_OBS_TRACE_OUT:-target/obs_trace.json}" \
  "${IOT_OBS_PROM_OUT:-target/obs_metrics.prom}"

echo "=== obs serve: live telemetry endpoint over real sockets ==="
./target/release/obs_serve_check

echo "=== bench trend: regression gate against recent same-host history ==="
# Gate against a scratch copy so routine verification never rewrites the
# committed BENCH_history.jsonl (extend that explicitly by running
# bench_trend against it).
if [ -f BENCH_history.jsonl ]; then
  cp BENCH_history.jsonl target/verify_history.jsonl
else
  rm -f target/verify_history.jsonl
fi
./target/release/bench_trend \
  "${IOT_BENCH_OUT:-target/verify_bench.json}" \
  target/verify_history.jsonl

echo "=== chaos smoke: fault-injection sweep + quarantine gates ==="
IOT_SCALE=quick \
  IOT_CHAOS_OUT="${IOT_CHAOS_OUT:-target/chaos_check.json}" \
  ./target/release/chaos_check

echo "=== supervise smoke: journaled campaign, SIGKILL mid-run, resume ==="
# Uninterrupted reference (the plain parallel driver: supervised runs
# must be byte-identical to it, interrupted or not).
./target/release/moniotr campaign quick workers 2 \
  --report-out target/supervise_ref.json >/dev/null
# Journaled run, slowed enough that the kill reliably lands mid-run.
rm -f target/supervise.jnl target/supervise_resumed.json
IOT_SUPERVISE_THROTTLE_MS=25 ./target/release/moniotr campaign quick workers 2 \
  --journal target/supervise.jnl >/dev/null 2>&1 &
SUPERVISE_PID=$!
sleep 1
kill -9 "$SUPERVISE_PID" 2>/dev/null || true
wait "$SUPERVISE_PID" 2>/dev/null || true
# Resume from whatever the kill left behind (a torn trailing record is
# expected and salvaged) and demand byte-identity with the reference.
./target/release/moniotr campaign quick workers 2 \
  --resume target/supervise.jnl --report-out target/supervise_resumed.json \
  | grep "supervision" || true
cmp target/supervise_ref.json target/supervise_resumed.json || {
  echo "verify.sh: FAIL — resumed report differs from the uninterrupted reference" >&2
  exit 1
}
echo "supervise smoke: resumed report byte-identical to the reference"

echo "=== oracle: invariants + metamorphic relations + differential runs ==="
IOT_SCALE=quick \
  IOT_ORACLE_OUT="${IOT_ORACLE_OUT:-target/oracle_check.json}" \
  ./target/release/oracle_check

# Deeper sweep: the medium-scale oracle, part of the nightly tier
# (./verify.sh --nightly) and still reachable via ORACLE_SCALE=medium.
# Warn-only — the quick-scale run above is the gate; this surfaces
# scale-dependent drift without making routine verification minutes
# slower or flaky on loaded hosts. IOT_OBS_ALLOC=1 turns the
# instrumented allocator on so the run reports the campaign's heap
# high-water and kernel peak RSS at medium scale.
if [ "$NIGHTLY" = 1 ] || [ "${ORACLE_SCALE:-}" = "medium" ]; then
  echo "=== oracle (nightly tier): medium scale + heap accounting, warn-only ==="
  if ! IOT_SCALE=medium IOT_OBS_ALLOC=1 \
    IOT_ORACLE_OUT="${IOT_ORACLE_MEDIUM_OUT:-target/oracle_check_medium.json}" \
    ./target/release/oracle_check; then
    echo "verify.sh: WARN — medium-scale oracle reported violations (non-gating)"
  fi
fi

echo "verify.sh: OK"
